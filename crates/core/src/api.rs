//! The platform API shared by Fireworks and the baseline platforms.
//!
//! # API v2
//!
//! Invocations are described by a single [`InvokeRequest`] value — one
//! thing a cluster router can carry, enqueue, and re-route — instead of
//! the positional `(name, args, mode)` triple of v1. Platform-wide
//! policies (recovery, paging, security, cache budget, keep-alive) are
//! consumed at construction via [`crate::config::PlatformConfig`];
//! the post-hoc mutators of v1 are gone.
//!
//! # API v3
//!
//! Function and host names are interned
//! ([`crate::symbols::FunctionId`], [`crate::symbols::HostId`]):
//! [`InvokeRequest::function`] carries an id, the per-function trait
//! methods ([`Platform::evict`], [`ConcurrentPlatform::residency`],
//! [`ConcurrentPlatform::prewarm`], [`ConcurrentPlatform::retire`])
//! take ids, and registries downstream key by id. Strings survive only
//! at the edges: [`FunctionSpec::name`] (the install boundary interns
//! it), error values, metric labels, and exports. The v2
//! string-accepting shims (`by_name`, `evict_named`, and friends) have
//! completed their deprecation cycle and are gone; intern once with
//! [`crate::symbols::FunctionId::intern`] and use the id-keyed methods.

use std::fmt;

use crate::symbols::{FunctionId, HostId};

use fireworks_lang::{ExecStats, LangError, Value};
use fireworks_microvm::VmError;
use fireworks_msgbus::BusError;
use fireworks_netsim::NetError;
use fireworks_runtime::RuntimeKind;
use fireworks_sandbox::IsolationLevel;
use fireworks_sim::trace::{Breakdown, Trace};
use fireworks_sim::Nanos;
use fireworks_store::StoreError;

/// Errors from platform operations.
///
/// Marked `#[non_exhaustive]`: new failure modes (cluster placement,
/// deadlines) may be added without a breaking change, so downstream
/// matches need a wildcard arm. Wrapped infrastructure errors are
/// exposed through [`std::error::Error::source`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PlatformError {
    /// Guest-language error (compile or runtime).
    Lang(LangError),
    /// The function is not installed.
    UnknownFunction(String),
    /// Networking failure.
    Net(NetError),
    /// Message-bus failure.
    Bus(BusError),
    /// Document-store failure.
    Store(StoreError),
    /// A warm start was requested but no warm sandbox exists.
    NoWarmSandbox(String),
    /// A microVM boot/restore failure that survived the platform's
    /// recovery policy (retries, quarantine, rebuild).
    Vm(VmError),
    /// The function's circuit breaker is open after repeated
    /// infrastructure failures; invocations fail fast until `until`.
    CircuitOpen {
        /// The function whose breaker is open.
        function: String,
        /// Virtual time at which the breaker half-opens again.
        until: Nanos,
    },
    /// The invocation exceeded its timeout and was killed.
    Timeout {
        /// The function that timed out.
        function: String,
        /// Guest ops retired before the kill.
        ops: u64,
    },
    /// The cluster could not place (or re-place) the invocation on any
    /// healthy host.
    HostUnavailable {
        /// The function that could not be placed.
        function: String,
        /// The host that failed while holding the invocation, if the
        /// request had already been routed somewhere.
        host: Option<usize>,
    },
    /// The request's [`InvokeRequest::deadline`] passed before a slot
    /// could start serving it.
    DeadlineExceeded {
        /// The function whose request expired.
        function: String,
        /// The deadline that passed.
        deadline: Nanos,
    },
    /// Anything else.
    Other(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Lang(e) => write!(f, "{e}"),
            PlatformError::UnknownFunction(name) => write!(f, "function `{name}` not installed"),
            PlatformError::Net(e) => write!(f, "{e}"),
            PlatformError::Bus(e) => write!(f, "{e}"),
            PlatformError::Store(e) => write!(f, "{e}"),
            PlatformError::NoWarmSandbox(name) => {
                write!(f, "no warm sandbox for `{name}` (invoke cold first)")
            }
            PlatformError::Vm(e) => write!(f, "{e}"),
            PlatformError::CircuitOpen { function, until } => {
                write!(f, "circuit open for `{function}` until t={until}")
            }
            PlatformError::Timeout { function, ops } => {
                write!(f, "`{function}` timed out after {ops} guest ops")
            }
            PlatformError::HostUnavailable { function, host } => match host {
                Some(h) => write!(f, "host {h} became unavailable while serving `{function}`"),
                None => write!(f, "no healthy host available for `{function}`"),
            },
            PlatformError::DeadlineExceeded { function, deadline } => {
                write!(
                    f,
                    "`{function}` missed its deadline t={deadline} before starting"
                )
            }
            PlatformError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Lang(e) => Some(e),
            PlatformError::Net(e) => Some(e),
            PlatformError::Bus(e) => Some(e),
            PlatformError::Store(e) => Some(e),
            PlatformError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for PlatformError {
    fn from(e: LangError) -> Self {
        PlatformError::Lang(e)
    }
}

impl From<NetError> for PlatformError {
    fn from(e: NetError) -> Self {
        PlatformError::Net(e)
    }
}

impl From<BusError> for PlatformError {
    fn from(e: BusError) -> Self {
        PlatformError::Bus(e)
    }
}

impl From<StoreError> for PlatformError {
    fn from(e: StoreError) -> Self {
        PlatformError::Store(e)
    }
}

impl From<VmError> for PlatformError {
    fn from(e: VmError) -> Self {
        PlatformError::Vm(e)
    }
}

/// A function to install on a platform.
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    /// Registered name.
    pub name: String,
    /// Flame source text with a `main(params)` entry.
    pub source: String,
    /// Which language runtime executes it.
    pub runtime: RuntimeKind,
    /// Representative parameters for install-time JIT warm-up.
    pub default_params: Value,
    /// Invocation timeout; `None` is unlimited. Exceeding it aborts the
    /// invocation with [`PlatformError::Timeout`].
    pub timeout: Option<Nanos>,
}

impl FunctionSpec {
    /// Builds a spec with the conventions used throughout the benches
    /// (no timeout).
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        runtime: RuntimeKind,
        default_params: Value,
    ) -> Self {
        FunctionSpec {
            name: name.into(),
            source: source.into(),
            runtime,
            default_params,
            timeout: None,
        }
    }

    /// Adds an invocation timeout.
    pub fn with_timeout(mut self, timeout: Nanos) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Report from installing a function.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// Total virtual install time (the paper's §5.1 measurement).
    pub install_time: Nanos,
    /// Pages in the snapshot memory file (0 for platforms that don't
    /// snapshot).
    pub snapshot_pages: usize,
    /// On-disk snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Functions that received the `@jit` annotation (Fireworks only).
    pub annotated_functions: usize,
}

/// Which start path served an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Fresh sandbox creation (VM boot or container create).
    ColdBoot,
    /// Re-attached kept-warm sandbox.
    WarmPool,
    /// Restored from a snapshot (OS-level or post-JIT).
    SnapshotRestore,
}

/// How the caller wants the invocation started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartMode {
    /// Force a fresh sandbox (evicts any warm one first).
    Cold,
    /// Require a kept-warm sandbox (error if none).
    Warm,
    /// Platform's natural path (Fireworks: snapshot restore; baselines:
    /// warm pool if available, else cold).
    Auto,
}

/// A fully-specified invocation request (API v2).
///
/// One value carries everything a platform — or a cluster router in
/// front of N platforms — needs to serve, enqueue, or re-route the
/// invocation. Defaults: [`StartMode::Auto`], no deadline.
///
/// Deadlines are *absolute* virtual instants enforced by the drivers
/// ([`crate::engine::run_concurrent`], [`crate::cluster::Cluster`]): a
/// request still queued when its deadline passes completes with
/// [`PlatformError::DeadlineExceeded`] instead of occupying a slot.
/// Platforms themselves ignore the field (per-invocation *timeouts*
/// belong to [`FunctionSpec::timeout`]).
#[derive(Debug, Clone)]
pub struct InvokeRequest {
    /// The installed function to invoke.
    pub function: FunctionId,
    /// Invocation arguments.
    pub args: Value,
    /// Requested start path.
    pub mode: StartMode,
    /// Absolute virtual-time admission deadline, if any.
    pub deadline: Option<Nanos>,
    /// Distributed-tracing context, minted at cluster admission. When
    /// set, the serving platform parents its `invoke` span under
    /// `trace.parent` so the whole service joins the request's causal
    /// tree even across hosts.
    pub trace: Option<fireworks_obs::SpanContext>,
}

impl InvokeRequest {
    /// A request for `function` with `args`, [`StartMode::Auto`], no
    /// deadline, and no trace context.
    pub fn new(function: FunctionId, args: Value) -> Self {
        InvokeRequest {
            function,
            args,
            mode: StartMode::Auto,
            deadline: None,
            trace: None,
        }
    }

    /// Sets the start mode.
    pub fn with_mode(mut self, mode: StartMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets an absolute admission deadline.
    pub fn with_deadline(mut self, deadline: Nanos) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches distributed-tracing context.
    pub fn with_trace(mut self, trace: fireworks_obs::SpanContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Derives the request for one chain stage: same mode, deadline, and
    /// trace context; next stage's function; the previous stage's result
    /// as arguments.
    pub fn stage(&self, function: FunctionId, args: Value) -> Self {
        InvokeRequest {
            function,
            args,
            mode: self.mode,
            deadline: self.deadline,
            trace: self.trace,
        }
    }
}

/// A completed invocation with its latency breakdown.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Value returned by the function.
    pub value: Value,
    /// Start-up / exec / others split (paper Figs. 6, 7, 9).
    pub breakdown: Breakdown,
    /// Labelled spans behind the breakdown.
    pub trace: Trace,
    /// Which start path served it.
    pub start: StartKind,
    /// Guest execution counters.
    pub stats: ExecStats,
    /// `print()` output captured from the guest.
    pub printed: Vec<String>,
    /// Body passed to `http_respond`, if the function responded.
    pub response: Option<String>,
}

impl Invocation {
    /// End-to-end latency.
    pub fn total(&self) -> Nanos {
        self.breakdown.total()
    }
}

/// A serverless platform under test.
///
/// Object-safe: routers and multi-platform harnesses hold
/// `&mut dyn Platform` / `Box<dyn Platform>`.
pub trait Platform {
    /// Platform name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Isolation level (paper Table 1).
    fn isolation(&self) -> IsolationLevel;

    /// Installs (registers) a function.
    fn install(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError>;

    /// Invokes an installed function.
    fn invoke(&mut self, req: &InvokeRequest) -> Result<Invocation, PlatformError>;

    /// Drops any kept-warm sandboxes for a function.
    fn evict(&mut self, function: FunctionId);

    /// Whether the platform can execute a chain of functions (paper §5.3:
    /// only OpenWhisk and Fireworks can).
    fn supports_chains(&self) -> bool {
        false
    }

    /// Invokes a chain of installed functions, piping each result into the
    /// next function's arguments. The request's `args` seed the first
    /// stage; its mode and deadline apply to every stage ( its
    /// `function` field is ignored — stages come from `stages`). Returns
    /// one invocation per stage.
    fn invoke_chain(
        &mut self,
        stages: &[FunctionId],
        req: &InvokeRequest,
    ) -> Result<Vec<Invocation>, PlatformError> {
        let _ = (stages, req);
        Err(PlatformError::Other(format!(
            "{} cannot process a chain of serverless functions",
            self.name()
        )))
    }
}

/// The resources an in-flight invocation holds between its service phase
/// and its completion event (a resident clone, a checked-out microVM, a
/// warm container).
///
/// The invocation engine keeps tokens alive from service start to the
/// invocation's virtual finish instant, so concurrent populations
/// genuinely coexist: host-memory accounting, CoW sharing against the
/// snapshot, and warm-pool contents all reflect who is live *now* on the
/// virtual timeline.
pub trait InFlightToken {
    /// Proportional-set-size attributed to this in-flight invocation's
    /// guest memory, if the platform tracks it (0 otherwise).
    fn pss_bytes(&self) -> u64 {
        0
    }
}

impl InFlightToken for () {}

/// A platform whose invocation path is split into non-blocking admission
/// plus explicit completion, so a discrete-event driver can hold many
/// invocations in flight at once.
///
/// [`ConcurrentPlatform::begin_invoke`] performs the whole service
/// activity (charging its virtual cost on the shared clock) but does
/// *not* release the sandbox; it returns the finished [`Invocation`]
/// together with an in-flight token owning the resources. The driver
/// schedules a completion event at the invocation's virtual finish
/// instant and calls [`ConcurrentPlatform::finish_invoke`] there — which
/// is where warm-pool returns, pause accounting, and memory release
/// happen. The blocking [`Platform::invoke`] is equivalent to
/// `begin_invoke` immediately followed by `finish_invoke` (a degenerate
/// single-event schedule).
pub trait ConcurrentPlatform: Platform {
    /// Resources held while the invocation is in flight.
    type InFlight: InFlightToken;

    /// Runs the invocation's service activity without releasing its
    /// sandbox.
    fn begin_invoke(
        &mut self,
        req: &InvokeRequest,
    ) -> Result<(Invocation, Self::InFlight), PlatformError>;

    /// Releases the invocation's resources at its completion instant
    /// (the current clock time).
    fn finish_invoke(&mut self, inflight: Self::InFlight);

    /// How much of `function`'s start artifact this platform holds — a
    /// cached post-JIT snapshot (Fireworks), an OS snapshot or
    /// checkpoint, or a non-empty warm pool. Content-addressed platforms
    /// report [`SnapshotResidency::Partial`] with the bytes still
    /// missing, so the cluster's locality router can rank hosts by
    /// transfer cost instead of an all-or-nothing boolean. Must not
    /// disturb replacement state (no LRU touch).
    fn residency(&self, function: FunctionId) -> SnapshotResidency {
        let _ = function;
        SnapshotResidency::Absent
    }

    /// Functions whose complete start artifact this platform currently
    /// holds hot (cached snapshot, warm pool), in ascending id order so
    /// walks are deterministic. A draining host's hand-off iterates
    /// this.
    fn hot_functions(&self) -> Vec<FunctionId> {
        Vec::new()
    }

    /// Makes `function`'s start artifact fully resident ahead of demand
    /// — on a content-addressed platform, by delta-fetching the missing
    /// chunks from a mesh donor. Returns whether the artifact is resident
    /// afterwards; platforms without a proactive path return `false`
    /// (the next invocation pays the normal miss cost).
    fn prewarm(&mut self, function: FunctionId) -> bool {
        let _ = function;
        false
    }

    /// Drops `function`'s local start artifact (scale-to-zero
    /// retirement): the cached snapshot is released and any mesh
    /// publication withdrawn. Returns whether anything was resident.
    /// Invocations still work afterwards — they pay a delta fetch or a
    /// rebuild.
    fn retire(&mut self, function: FunctionId) -> bool {
        let _ = function;
        false
    }

    /// A consistency snapshot of this platform's content-addressed
    /// storage, for invariant audits: the chunk store's reference-count
    /// ledger next to the cached manifests those references should be
    /// held by. `None` on platforms without a chunk store.
    fn store_audit(&self) -> Option<StoreAudit> {
        None
    }

    /// Joins the cluster's [`crate::mesh::ChunkMesh`] as `host_id`.
    /// Content-addressed platforms register their chunk store and start
    /// publishing manifests; everyone else ignores the call.
    fn attach_mesh(&mut self, mesh: crate::mesh::SharedChunkMesh, host_id: HostId) {
        let _ = (mesh, host_id);
    }

    /// Makes `spec` invocable without building its start artifact: a
    /// first invocation pays the build (or a delta fetch). Platforms
    /// without a lazy path install eagerly.
    fn register(&mut self, spec: &FunctionSpec) -> Result<(), PlatformError> {
        self.install(spec).map(|_| ())
    }
}

/// How much of a function's start artifact a host holds.
///
/// The ordering a router wants is by *bytes to move*: `Full` (0 bytes) <
/// `Partial { missing_bytes }` (ship the delta) < `Absent` (rebuild from
/// source or ship everything). [`SnapshotResidency::missing_bytes`]
/// exposes exactly that scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotResidency {
    /// The complete artifact is resident; a start needs no extra bytes.
    Full,
    /// Some chunks are resident (shared with other functions or
    /// previously fetched); `missing_bytes` must arrive before a restore.
    Partial {
        /// Bytes of the snapshot this host does not hold.
        missing_bytes: u64,
    },
    /// Nothing usable is resident.
    Absent,
}

impl SnapshotResidency {
    /// Bytes that must be moved (or rebuilt) before this host can serve a
    /// snapshot start. `Absent` answers `u64::MAX` — worse than any
    /// partial holding — so rankings can compare residencies directly.
    pub fn missing_bytes(self) -> u64 {
        match self {
            SnapshotResidency::Full => 0,
            SnapshotResidency::Partial { missing_bytes } => missing_bytes,
            SnapshotResidency::Absent => u64::MAX,
        }
    }

    /// Whether the complete artifact is resident.
    pub fn is_full(self) -> bool {
        matches!(self, SnapshotResidency::Full)
    }
}

/// A consistency snapshot of one host's content-addressed storage,
/// produced by [`ConcurrentPlatform::store_audit`].
///
/// The invariant it exists to check: every chunk reference in the store
/// is held by exactly one live manifest occurrence, and every cached
/// manifest's chunks are present. [`StoreAudit::verify`] performs that
/// cross-check; the elastic control plane's auditor runs it after every
/// membership event.
#[derive(Debug, Clone)]
pub struct StoreAudit {
    /// The store's full `(chunk hash, reference count)` ledger, in hash
    /// order.
    pub chunk_refs: Vec<(fireworks_guestmem::ChunkHash, u32)>,
    /// Cached dedup entries: `(function, manifest)`, sorted by function.
    pub manifests: Vec<(String, fireworks_guestmem::SnapshotManifest)>,
}

impl StoreAudit {
    /// Cross-checks the reference-count ledger against the live
    /// manifests: each chunk's refcount must equal its total occurrence
    /// count across cached manifests (no orphaned chunks, no dangling
    /// references). Returns every violation found, as human-readable
    /// descriptions; an empty vector means the store is consistent.
    pub fn verify(&self) -> Vec<String> {
        use std::collections::BTreeMap;
        let mut expected: BTreeMap<fireworks_guestmem::ChunkHash, u32> = BTreeMap::new();
        for (_, manifest) in &self.manifests {
            for chunk in &manifest.chunks {
                *expected.entry(chunk.hash).or_insert(0) += 1;
            }
        }
        let mut violations = Vec::new();
        let mut seen: BTreeMap<fireworks_guestmem::ChunkHash, u32> = BTreeMap::new();
        for (hash, refs) in &self.chunk_refs {
            seen.insert(*hash, *refs);
            match expected.get(hash) {
                None => violations.push(format!(
                    "orphaned chunk {hash:?}: {refs} refs but no live manifest references it"
                )),
                Some(want) if want != refs => violations.push(format!(
                    "refcount mismatch on chunk {hash:?}: store holds {refs}, live manifests need {want}"
                )),
                Some(_) => {}
            }
        }
        for (hash, want) in &expected {
            if !seen.contains_key(hash) {
                violations.push(format!(
                    "missing chunk {hash:?}: {want} live manifest references but the store lacks it"
                ));
            }
        }
        violations
    }
}

/// Shared helper: thread a value through a chain by invoking one stage at
/// a time (used by the platforms that do support chains). Stage `k`
/// receives stage `k-1`'s result as its arguments; the template request's
/// mode and deadline apply to every stage.
pub fn run_chain<P: Platform + ?Sized>(
    platform: &mut P,
    stages: &[FunctionId],
    req: &InvokeRequest,
) -> Result<Vec<Invocation>, PlatformError> {
    let mut results = Vec::with_capacity(stages.len());
    let mut current = req.args.clone();
    for &stage in stages {
        let inv = platform.invoke(&req.stage(stage, current))?;
        current = inv.value.clone();
        results.push(inv);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::fid;

    #[test]
    fn platform_error_display_covers_variants() {
        let e = PlatformError::UnknownFunction("f".into());
        assert!(e.to_string().contains("not installed"));
        let e: PlatformError = LangError::runtime("boom").into();
        assert!(e.to_string().contains("boom"));
        let e = PlatformError::NoWarmSandbox("f".into());
        assert!(e.to_string().contains("warm"));
        let e = PlatformError::CircuitOpen {
            function: "f".into(),
            until: Nanos::from_millis(5),
        };
        assert!(e.to_string().contains("circuit open"));
        let e = PlatformError::Timeout {
            function: "f".into(),
            ops: 10,
        };
        assert!(e.to_string().contains("timed out"));
        let e = PlatformError::HostUnavailable {
            function: "f".into(),
            host: None,
        };
        assert!(e.to_string().contains("no healthy host"));
        let e = PlatformError::HostUnavailable {
            function: "f".into(),
            host: Some(3),
        };
        assert!(e.to_string().contains("host 3"));
        let e = PlatformError::DeadlineExceeded {
            function: "f".into(),
            deadline: Nanos::from_millis(9),
        };
        assert!(e.to_string().contains("deadline"));
        let e = PlatformError::Other("misc".into());
        assert!(e.to_string().contains("misc"));
    }

    #[test]
    fn wrapped_causes_surface_through_source() {
        use std::error::Error as _;
        let e: PlatformError = LangError::runtime("boom").into();
        assert!(e.source().is_some(), "Lang cause exposed");
        let e = PlatformError::UnknownFunction("f".into());
        assert!(e.source().is_none(), "leaf errors have no cause");
    }

    #[test]
    fn invoke_request_builder_defaults_and_overrides() {
        let req = InvokeRequest::new(fid("f"), Value::Int(1));
        assert_eq!(req.function, fid("f"));
        assert_eq!(req.function.name().as_ref(), "f");
        assert_eq!(req.mode, StartMode::Auto);
        assert!(req.deadline.is_none());
        let req = req
            .with_mode(StartMode::Cold)
            .with_deadline(Nanos::from_millis(7));
        assert_eq!(req.mode, StartMode::Cold);
        assert_eq!(req.deadline, Some(Nanos::from_millis(7)));
        // Chain stages inherit mode and deadline.
        let stage = req.stage(fid("g"), Value::Int(2));
        assert_eq!(stage.function, fid("g"));
        assert_eq!(stage.mode, StartMode::Cold);
        assert_eq!(stage.deadline, Some(Nanos::from_millis(7)));
    }

    #[test]
    fn residency_orders_by_bytes_to_move() {
        let full = SnapshotResidency::Full;
        let near = SnapshotResidency::Partial {
            missing_bytes: 4096,
        };
        let far = SnapshotResidency::Partial {
            missing_bytes: 1 << 30,
        };
        let absent = SnapshotResidency::Absent;
        assert!(full.is_full());
        assert!(!near.is_full());
        assert!(full.missing_bytes() < near.missing_bytes());
        assert!(near.missing_bytes() < far.missing_bytes());
        assert!(far.missing_bytes() < absent.missing_bytes());
    }

    #[test]
    fn invocation_total_sums_breakdown() {
        let inv = Invocation {
            value: Value::Null,
            breakdown: Breakdown {
                startup: Nanos::from_millis(10),
                exec: Nanos::from_millis(20),
                other: Nanos::from_millis(5),
            },
            trace: Trace::new(),
            start: StartKind::ColdBoot,
            stats: ExecStats::default(),
            printed: vec![],
            response: None,
        };
        assert_eq!(inv.total(), Nanos::from_millis(35));
    }
}
