//! The concurrent invocation engine: N invocations in flight at once.
//!
//! [`Platform::invoke`](crate::api::Platform::invoke) is a blocking call
//! — by the time it returns, its sandbox has already been released, so no
//! two invocations ever coexist and the load curves produced from it are
//! post-hoc queueing math over idle-host latencies. This module drives a
//! [`ConcurrentPlatform`] through the discrete-event engine
//! ([`fireworks_sim::engine`]) instead: arrivals and completions are
//! events on the shared virtual timeline, admission is a FIFO queue in
//! front of a bounded set of invoker slots, and an invocation's resources
//! (its in-flight token) are held from service start to its virtual
//! finish instant. Concurrent clones therefore genuinely contend — for
//! slots, for host RAM (guest-memory PSS under live populations), and
//! for the snapshot cache — which is what the paper's consolidation
//! claims (Figs. 10/12) are about.
//!
//! # Event model
//!
//! Each request contributes two events:
//!
//! - **Arrive**: at the request's arrival instant. If a slot is free the
//!   service activity runs immediately (charging its cost on the clock,
//!   which lands at the invocation's finish instant); otherwise the
//!   request joins the FIFO admission queue.
//! - **Complete**: scheduled at the invocation's finish instant. The
//!   in-flight token is released (warm-pool return / clone teardown),
//!   the slot frees, and the head of the admission queue — if any —
//!   starts service at this instant.
//!
//! Requests carrying an [`InvokeRequest::deadline`] that passes while
//! they wait are rejected at their would-be service start with
//! [`PlatformError::DeadlineExceeded`]; they never consume a slot.
//!
//! Determinism follows from the event queue's `(time, seq)` ordering plus
//! the deterministic platforms underneath; identical request schedules
//! produce byte-identical reports.

use std::collections::{BTreeMap, VecDeque};

use fireworks_obs::{cat, Obs, Recorder, SpanContext, SpanId, TraceId};
use fireworks_sim::engine::EventQueue;
use fireworks_sim::trace::Phase;
use fireworks_sim::{Clock, Nanos};

use crate::api::{ConcurrentPlatform, InFlightToken, Invocation, InvokeRequest, PlatformError};
use crate::symbols::FunctionId;

/// One request offered to the engine: an invocation plus its arrival
/// instant on the virtual timeline.
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// Arrival instant on the virtual timeline.
    pub arrival: Nanos,
    /// The invocation to perform.
    pub invoke: InvokeRequest,
}

impl EngineRequest {
    /// A request arriving at `arrival`.
    pub fn at(arrival: Nanos, invoke: InvokeRequest) -> Self {
        EngineRequest { arrival, invoke }
    }
}

/// What to do with an invocation's resources at its completion event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionPolicy {
    /// Release the token (warm-pool return / teardown) — the normal
    /// serving loop.
    Release,
    /// Keep every token resident and return them in the report — the
    /// density experiments (paper §5.4), where clones keep serving and
    /// the question is how many fit in host RAM.
    Retain,
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Invoker slots (maximum concurrent service activities).
    pub slots: usize,
    /// What happens to in-flight tokens at completion.
    pub completion: CompletionPolicy,
}

impl EngineConfig {
    /// A serving configuration with `slots` invoker slots.
    pub fn new(slots: usize) -> Self {
        EngineConfig {
            slots,
            completion: CompletionPolicy::Release,
        }
    }

    /// Switches the engine to retain completed invocations' resources.
    pub fn retain_completed(mut self) -> Self {
        self.completion = CompletionPolicy::Retain;
        self
    }
}

/// One request's outcome, with its queueing timeline.
#[derive(Debug)]
pub struct EngineCompletion {
    /// Index of the request in the submitted schedule.
    pub index: usize,
    /// The function invoked.
    pub function: FunctionId,
    /// When the request arrived.
    pub arrived: Nanos,
    /// When a slot picked it up (for a missed deadline: when the engine
    /// rejected it).
    pub started: Nanos,
    /// When its service activity finished (success or failure).
    pub finished: Nanos,
    /// The invocation, or the error that ended it.
    pub result: Result<Invocation, PlatformError>,
}

impl EngineCompletion {
    /// Time spent waiting for a slot.
    pub fn waited(&self) -> Nanos {
        self.started.saturating_sub(self.arrived)
    }

    /// Total time in the system (what the client observes).
    pub fn sojourn(&self) -> Nanos {
        self.finished.saturating_sub(self.arrived)
    }
}

/// The engine's output: completions in request order, plus concurrency
/// high-water marks.
#[derive(Debug)]
pub struct EngineReport<T> {
    /// One entry per request, ordered by request index.
    pub completions: Vec<EngineCompletion>,
    /// Tokens still resident ([`CompletionPolicy::Retain`] only), in
    /// completion order.
    pub retained: Vec<T>,
    /// Most invocations ever simultaneously in service.
    pub peak_inflight: usize,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: usize,
    /// Highest total PSS attributed to live in-flight (plus retained)
    /// guest memory, sampled at event boundaries.
    pub peak_live_pss_bytes: u64,
    /// Simulator events (arrivals + completions) the run processed —
    /// the deterministic denominator of an events/sec throughput
    /// measurement.
    pub events_processed: u64,
}

enum Event {
    Arrive(usize),
    Complete(usize),
}

/// Drives `requests` (sorted by arrival) through `platform` on the
/// event engine and returns the completions with concurrency stats.
///
/// The engine publishes live gauges on `obs` at every event boundary —
/// `engine.inflight`, `engine.queue_depth`, `engine.live_pss_bytes` —
/// and their `engine.peak_*` high-water marks, so a metrics snapshot
/// taken after a run carries the concurrency profile.
///
/// # Panics
///
/// Panics if `config.slots == 0` or `requests` are not sorted by
/// arrival time.
pub fn run_concurrent<P: ConcurrentPlatform>(
    platform: &mut P,
    clock: &Clock,
    obs: &Obs,
    config: &EngineConfig,
    requests: &[EngineRequest],
) -> EngineReport<P::InFlight> {
    assert!(config.slots > 0, "need at least one invoker slot");
    assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "requests must be sorted by arrival time"
    );

    let mut queue: EventQueue<Event> = EventQueue::new();
    for (i, r) in requests.iter().enumerate() {
        queue.schedule(r.arrival, Event::Arrive(i));
    }

    // The engine's mutable state between events.
    struct State<T> {
        free: usize,
        waiting: VecDeque<usize>,
        // BTreeMap keeps iteration (PSS sampling) deterministic.
        inflight: BTreeMap<usize, T>,
        retained: Vec<T>,
        out: Vec<Option<EngineCompletion>>,
        // Per-request detached trace roots, opened at arrival and closed
        // at completion or rejection.
        roots: BTreeMap<usize, (TraceId, SpanId)>,
        peak_inflight: usize,
        peak_queue_depth: usize,
        peak_live_pss: u64,
    }

    impl<T: InFlightToken> State<T> {
        // Opens request `i`'s trace: one detached root span per request,
        // so interleaved requests never adopt each other's spans.
        fn admit(&mut self, rec: &Recorder, requests: &[EngineRequest], i: usize) {
            let trace = rec.next_trace_id();
            let root = rec.start_detached("request", cat::INVOKE, trace);
            rec.attr(root, "function", &*requests[i].invoke.function.name());
            self.roots.insert(i, (trace, root));
        }

        // Starts request `i`'s service activity at the current clock
        // instant and schedules its completion at the finish instant.
        fn start_service<P: ConcurrentPlatform<InFlight = T>>(
            &mut self,
            platform: &mut P,
            clock: &Clock,
            rec: &Recorder,
            queue: &mut EventQueue<Event>,
            requests: &[EngineRequest],
            i: usize,
        ) {
            self.free -= 1;
            let started = clock.now();
            let r = &requests[i];
            let (trace, root) = self.roots[&i];
            rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, started);
            // The service span goes on the open stack: everything the
            // platform records nests under it and inherits the trace.
            // The flow pair draws the admission → service causal arrow.
            let service = rec.start_under(root, "service", cat::INVOKE);
            rec.flow_out(root, trace.raw());
            rec.flow_in(service, trace.raw());
            let invoke = r.invoke.clone().with_trace(SpanContext {
                trace,
                parent: service,
            });
            let result = platform.begin_invoke(&invoke);
            let finished = clock.now();
            rec.end(service);
            rec.end_detached(root);
            let result = match result {
                Ok((invocation, token)) => {
                    self.inflight.insert(i, token);
                    Ok(invocation)
                }
                // A failed invocation held its slot up to the failure
                // instant; the Complete event frees it there.
                Err(e) => Err(e),
            };
            self.out[i] = Some(EngineCompletion {
                index: i,
                function: r.invoke.function,
                arrived: r.arrival,
                started,
                finished,
                result,
            });
            queue.schedule(finished, Event::Complete(i));
        }

        // Whether request `i`'s deadline has passed at `now`; a missed
        // deadline is recorded as a completion without consuming a slot.
        fn reject_if_expired(
            &mut self,
            rec: &Recorder,
            requests: &[EngineRequest],
            i: usize,
            now: Nanos,
        ) -> bool {
            let r = &requests[i];
            let Some(deadline) = r.invoke.deadline else {
                return false;
            };
            if now <= deadline {
                return false;
            }
            if let Some((_, root)) = self.roots.get(&i).copied() {
                rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, now);
                rec.attr(root, "rejected", "deadline");
                rec.end_detached(root);
            }
            self.out[i] = Some(EngineCompletion {
                index: i,
                function: r.invoke.function,
                arrived: r.arrival,
                started: now,
                finished: now,
                result: Err(PlatformError::DeadlineExceeded {
                    function: r.invoke.function.name().to_string(),
                    deadline,
                }),
            });
            true
        }
    }

    let mut out: Vec<Option<EngineCompletion>> = Vec::with_capacity(requests.len());
    out.resize_with(requests.len(), || None);
    let mut state: State<P::InFlight> = State {
        free: config.slots,
        waiting: VecDeque::new(),
        inflight: BTreeMap::new(),
        retained: Vec::new(),
        out,
        roots: BTreeMap::new(),
        peak_inflight: 0,
        peak_queue_depth: 0,
        peak_live_pss: 0,
    };
    let rec = obs.recorder().clone();
    // Gauge handles resolved once: the per-event sampling below is a
    // handful of Cell stores instead of six key allocations + lookups.
    let m = obs.metrics();
    let g_inflight = m.gauge("engine.inflight", &[]);
    let g_queue_depth = m.gauge("engine.queue_depth", &[]);
    let g_live_pss = m.gauge("engine.live_pss_bytes", &[]);
    let g_peak_inflight = m.gauge("engine.peak_inflight", &[]);
    let g_peak_queue_depth = m.gauge("engine.peak_queue_depth", &[]);
    let g_peak_live_pss = m.gauge("engine.peak_live_pss_bytes", &[]);

    let mut events_processed = 0u64;
    while let Some(ev) = queue.pop() {
        events_processed += 1;
        clock.warp_to(ev.at);
        match ev.event {
            Event::Arrive(i) => {
                state.admit(&rec, requests, i);
                if state.reject_if_expired(&rec, requests, i, clock.now()) {
                    // Arrived already past its deadline: rejected above.
                } else if state.free > 0 {
                    state.start_service(platform, clock, &rec, &mut queue, requests, i);
                } else {
                    state.waiting.push_back(i);
                }
            }
            Event::Complete(i) => {
                if let Some(token) = state.inflight.remove(&i) {
                    match config.completion {
                        CompletionPolicy::Release => platform.finish_invoke(token),
                        CompletionPolicy::Retain => state.retained.push(token),
                    }
                }
                state.free += 1;
                // Skip over queued requests whose deadline passed while
                // they waited; serve the first still-admissible one.
                while let Some(next) = state.waiting.pop_front() {
                    if state.reject_if_expired(&rec, requests, next, clock.now()) {
                        continue;
                    }
                    state.start_service(platform, clock, &rec, &mut queue, requests, next);
                    break;
                }
            }
        }

        // Sample the engine gauges at the event boundary.
        let live: u64 = state
            .inflight
            .values()
            .map(InFlightToken::pss_bytes)
            .chain(state.retained.iter().map(InFlightToken::pss_bytes))
            .fold(0u64, u64::saturating_add);
        state.peak_inflight = state.peak_inflight.max(state.inflight.len());
        state.peak_queue_depth = state.peak_queue_depth.max(state.waiting.len());
        state.peak_live_pss = state.peak_live_pss.max(live);
        g_inflight.set(state.inflight.len() as i64);
        g_queue_depth.set(state.waiting.len() as i64);
        g_live_pss.set(live as i64);
        g_peak_inflight.set(state.peak_inflight as i64);
        g_peak_queue_depth.set(state.peak_queue_depth as i64);
        g_peak_live_pss.set(state.peak_live_pss as i64);
    }

    EngineReport {
        completions: state
            .out
            .into_iter()
            .map(|c| c.expect("every request completes"))
            .collect(),
        retained: state.retained,
        peak_inflight: state.peak_inflight,
        peak_queue_depth: state.peak_queue_depth,
        peak_live_pss_bytes: state.peak_live_pss,
        events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{FunctionSpec, StartKind};
    use crate::env::PlatformEnv;
    use crate::fireworks::FireworksPlatform;
    use crate::symbols::fid;
    use fireworks_lang::Value;
    use fireworks_runtime::RuntimeKind;

    const SRC: &str = "
        fn main(params) {
            let n = params[\"n\"];
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }";

    fn spec(name: &str) -> FunctionSpec {
        FunctionSpec::new(
            name,
            SRC,
            RuntimeKind::NodeLike,
            Value::map([("n".to_string(), Value::Int(1000))]),
        )
    }

    fn args(n: i64) -> Value {
        Value::map([("n".to_string(), Value::Int(n))])
    }

    fn burst(count: usize, at: Nanos) -> Vec<EngineRequest> {
        (0..count)
            .map(|_| EngineRequest::at(at, InvokeRequest::new(fid("f"), args(500))))
            .collect()
    }

    fn installed_platform() -> FireworksPlatform {
        let mut p = FireworksPlatform::new(PlatformEnv::default_env());
        p.install(&spec("f")).expect("installs");
        p
    }

    use crate::api::Platform;

    #[test]
    fn a_burst_genuinely_overlaps_in_flight() {
        let mut p = installed_platform();
        let env = p.env().clone();
        let report = run_concurrent(
            &mut p,
            &env.clock,
            &env.obs,
            &EngineConfig::new(4),
            &burst(4, Nanos::ZERO),
        );
        assert_eq!(report.peak_inflight, 4, "all four clones live at once");
        assert_eq!(report.peak_queue_depth, 0);
        assert!(report.peak_live_pss_bytes > 0, "live clones have PSS");
        for c in &report.completions {
            let inv = c.result.as_ref().expect("succeeds");
            assert_eq!(inv.start, StartKind::SnapshotRestore);
            assert_eq!(c.waited(), Nanos::ZERO);
        }
        // Concurrent arrivals all start at t=0: their service spans
        // overlap on the virtual timeline.
        assert!(report.completions.iter().all(|c| c.started == Nanos::ZERO));
    }

    #[test]
    fn slots_gate_admission_fcfs() {
        let mut p = installed_platform();
        let env = p.env().clone();
        let report = run_concurrent(
            &mut p,
            &env.clock,
            &env.obs,
            &EngineConfig::new(1),
            &burst(3, Nanos::ZERO),
        );
        assert_eq!(report.peak_inflight, 1);
        assert_eq!(report.peak_queue_depth, 2);
        // FCFS: request k starts when request k-1 finishes.
        for w in report.completions.windows(2) {
            assert_eq!(w[1].started, w[0].finished);
        }
        let snap = env.obs.metrics().snapshot();
        assert_eq!(snap.gauge("engine.peak_queue_depth", &[]), Some(2));
        assert_eq!(snap.gauge("engine.inflight", &[]), Some(0), "drained");
        assert_eq!(snap.gauge("engine.queue_depth", &[]), Some(0));
    }

    #[test]
    fn retain_mode_keeps_clones_resident() {
        let mut p = installed_platform();
        let env = p.env().clone();
        let used_before = env.host_mem.used_bytes();
        let report = run_concurrent(
            &mut p,
            &env.clock,
            &env.obs,
            &EngineConfig::new(2).retain_completed(),
            &burst(3, Nanos::ZERO),
        );
        assert_eq!(report.retained.len(), 3);
        assert!(
            env.host_mem.used_bytes() > used_before,
            "retained clones keep their guest memory charged"
        );
        for clone in report.retained {
            p.release_clone(clone);
        }
    }

    #[test]
    fn identical_schedules_produce_identical_reports() {
        let run = || {
            let mut p = installed_platform();
            let env = p.env().clone();
            let mut requests = burst(5, Nanos::ZERO);
            for (k, r) in requests.iter_mut().enumerate() {
                r.arrival = Nanos::from_millis(3 * k as u64);
            }
            let report = run_concurrent(
                &mut p,
                &env.clock,
                &env.obs,
                &EngineConfig::new(2),
                &requests,
            );
            report
                .completions
                .iter()
                .map(|c| (c.arrived, c.started, c.finished))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn failures_occupy_their_slot_until_the_failure_instant() {
        let mut p = installed_platform();
        let env = p.env().clone();
        let requests = vec![
            EngineRequest::at(Nanos::ZERO, InvokeRequest::new(fid("ghost"), args(1))),
            EngineRequest::at(Nanos::ZERO, InvokeRequest::new(fid("f"), args(10))),
        ];
        let report = run_concurrent(
            &mut p,
            &env.clock,
            &env.obs,
            &EngineConfig::new(1),
            &requests,
        );
        assert!(matches!(
            report.completions[0].result,
            Err(PlatformError::UnknownFunction(_))
        ));
        let inv = report.completions[1].result.as_ref().expect("succeeds");
        assert_eq!(inv.value, Value::Int(45));
        assert_eq!(
            report.completions[1].started,
            report.completions[0].finished
        );
    }

    #[test]
    fn queued_requests_past_their_deadline_are_rejected_without_a_slot() {
        let mut p = installed_platform();
        let env = p.env().clone();
        // One slot; the first request occupies it for its whole service
        // time, so the second — deadline 1 ns after arrival — expires in
        // the queue, and the third still runs.
        let requests = vec![
            EngineRequest::at(Nanos::ZERO, InvokeRequest::new(fid("f"), args(500))),
            EngineRequest::at(
                Nanos::ZERO,
                InvokeRequest::new(fid("f"), args(500)).with_deadline(Nanos::from_nanos(1)),
            ),
            EngineRequest::at(Nanos::ZERO, InvokeRequest::new(fid("f"), args(500))),
        ];
        let report = run_concurrent(
            &mut p,
            &env.clock,
            &env.obs,
            &EngineConfig::new(1),
            &requests,
        );
        assert!(report.completions[0].result.is_ok());
        assert!(matches!(
            report.completions[1].result,
            Err(PlatformError::DeadlineExceeded { .. })
        ));
        assert_eq!(
            report.completions[1].sojourn(),
            report.completions[0].finished,
            "rejected exactly when its slot would have opened"
        );
        let inv2 = report.completions[2].result.as_ref().expect("succeeds");
        assert_eq!(inv2.value, Value::Int(124750));
        // The third request started right after the first finished: the
        // expired request never held the slot.
        assert_eq!(
            report.completions[2].started,
            report.completions[0].finished
        );
    }
}
