//! Snapshot cache with a disk budget and LRU replacement.
//!
//! The paper (§6, *Disk space overhead for function snapshots*) notes that
//! per-function snapshots of thousands of functions strain disk space and
//! proposes bounding the space with a replacement policy that keeps hot
//! functions' snapshots. This is that cache: snapshots evicted here force
//! a re-install on the next invocation.
//!
//! With a [`ChunkStore`] attached
//! ([`crate::config::SnapshotStorePolicy::Dedup`]), the budget is charged
//! against the store's *unique* chunk bytes instead of per-snapshot file
//! sizes — identical chunks shared by many functions count once — and
//! evicting an entry releases its manifest, freeing only the chunks no
//! other cached snapshot still references.

use std::cell::RefCell;
use std::rc::Rc;

use fireworks_guestmem::SnapshotManifest;

use crate::symbols::{FunctionId, IdMap};
use fireworks_microvm::VmFullSnapshot;
use fireworks_obs::{cat, Obs};
use fireworks_store::ChunkStore;

/// An LRU snapshot cache bounded by on-disk bytes.
#[derive(Debug)]
pub struct SnapshotCache {
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: IdMap<Entry>,
    evictions: u64,
    obs: Option<Obs>,
    store: Option<Rc<RefCell<ChunkStore>>>,
}

#[derive(Debug)]
struct Entry {
    snapshot: Rc<VmFullSnapshot>,
    bytes: u64,
    last_used: u64,
    manifest: Option<SnapshotManifest>,
}

impl SnapshotCache {
    /// Creates a cache holding at most `capacity_bytes` of snapshot files.
    pub fn new(capacity_bytes: u64) -> Self {
        SnapshotCache {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            entries: IdMap::new(),
            evictions: 0,
            obs: None,
            store: None,
        }
    }

    /// Attaches the host's chunk store: the budget is then charged on
    /// unique chunk bytes, and entries inserted via
    /// [`SnapshotCache::insert_dedup`] release their manifests on
    /// eviction.
    pub fn attach_store(&mut self, store: Rc<RefCell<ChunkStore>>) {
        self.store = Some(store);
    }

    /// Attaches an observability plane; lookups, inserts, and evictions
    /// are then counted (`core.cache.*`) and evictions become instant
    /// events.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    fn count(&self, name: &'static str) {
        if let Some(obs) = &self.obs {
            obs.metrics().inc(name, &[]);
        }
    }

    /// Inserts (or replaces) a function's snapshot, evicting least-
    /// recently-used entries until the budget holds. A snapshot larger
    /// than the whole budget is still stored alone (it must exist
    /// somewhere to be restorable). Returns the functions evicted to
    /// make room, oldest first.
    pub fn insert(
        &mut self,
        function: FunctionId,
        snapshot: Rc<VmFullSnapshot>,
    ) -> Vec<FunctionId> {
        self.insert_entry(function, snapshot, None)
    }

    /// Inserts a snapshot whose pages live in the attached [`ChunkStore`],
    /// recording the manifest so eviction can release its chunk
    /// references. The caller must already have ingested the chunks (the
    /// store's refcounts include this manifest).
    pub fn insert_dedup(
        &mut self,
        function: FunctionId,
        snapshot: Rc<VmFullSnapshot>,
        manifest: SnapshotManifest,
    ) -> Vec<FunctionId> {
        self.insert_entry(function, snapshot, Some(manifest))
    }

    fn insert_entry(
        &mut self,
        function: FunctionId,
        snapshot: Rc<VmFullSnapshot>,
        manifest: Option<SnapshotManifest>,
    ) -> Vec<FunctionId> {
        let bytes = snapshot.file_bytes();
        if let Some(old) = self.entries.remove(function) {
            self.used_bytes -= old.bytes;
            self.release_entry_chunks(&old);
        }
        self.tick += 1;
        self.entries.insert(
            function,
            Entry {
                snapshot,
                bytes,
                last_used: self.tick,
                manifest,
            },
        );
        self.used_bytes += bytes;
        self.count("core.cache.inserts");
        self.evict_to_budget(function)
    }

    /// Releases a dedup entry's chunk references back to the store.
    fn release_entry_chunks(&self, entry: &Entry) {
        if let (Some(store), Some(manifest)) = (&self.store, &entry.manifest) {
            store.borrow_mut().release_manifest(manifest);
        }
    }

    /// Bytes the budget is charged on: unique chunk bytes when a store is
    /// attached (shared chunks count once), flat file bytes otherwise.
    fn effective_used(&self) -> u64 {
        match &self.store {
            Some(store) => store.borrow().unique_bytes(),
            None => self.used_bytes,
        }
    }

    fn evict_to_budget(&mut self, keep: FunctionId) -> Vec<FunctionId> {
        let mut evicted = Vec::new();
        while self.effective_used() > self.capacity_bytes && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(e) = self.entries.remove(victim) {
                self.used_bytes -= e.bytes;
                self.release_entry_chunks(&e);
                self.evictions += 1;
                self.count("core.cache.evictions");
                if let Some(obs) = &self.obs {
                    obs.recorder().instant_with(
                        format!("cache_evict:{victim}"),
                        cat::CACHE,
                        vec![("bytes", e.bytes.into())],
                    );
                }
                evicted.push(victim);
            }
        }
        evicted
    }

    /// Fetches a snapshot, marking it most-recently-used.
    pub fn get(&mut self, function: FunctionId) -> Option<Rc<VmFullSnapshot>> {
        self.tick += 1;
        let tick = self.tick;
        let hit = self.entries.get_mut(function).map(|e| {
            e.last_used = tick;
            e.snapshot.clone()
        });
        self.count(if hit.is_some() {
            "core.cache.hits"
        } else {
            "core.cache.misses"
        });
        hit
    }

    /// Whether a snapshot is cached, without touching its recency or
    /// counting a lookup. Used by the cluster's snapshot-locality router,
    /// whose probes must not perturb replacement state.
    pub fn contains(&self, function: FunctionId) -> bool {
        self.entries.contains(function)
    }

    /// Removes a snapshot explicitly (e.g. on security refresh).
    pub fn remove(&mut self, function: FunctionId) -> Option<Rc<VmFullSnapshot>> {
        self.entries.remove(function).map(|e| {
            self.used_bytes -= e.bytes;
            self.release_entry_chunks(&e);
            e.snapshot
        })
    }

    /// The manifest recorded for a dedup entry, if any.
    pub fn manifest(&self, function: FunctionId) -> Option<&SnapshotManifest> {
        self.entries.get(function).and_then(|e| e.manifest.as_ref())
    }

    /// Every dedup entry's `(function, manifest)` pair, in ascending id
    /// order so walks are deterministic. Flat entries (no manifest) are
    /// skipped. The invariant auditor cross-checks this against the
    /// chunk store's reference counts.
    pub fn manifests(&self) -> Vec<(FunctionId, &SnapshotManifest)> {
        self.entries
            .iter()
            .filter_map(|(k, e)| e.manifest.as_ref().map(|m| (k, m)))
            .collect()
    }

    /// Cached functions, in ascending id order for deterministic walks.
    pub fn names(&self) -> Vec<FunctionId> {
        self.entries.keys().collect()
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::fid;
    use fireworks_guestmem::HostMemory;
    use fireworks_sim::Clock;

    /// Builds a real snapshot through the microvm API (the cache only
    /// reads `file_bytes`, but fidelity is cheap here).
    fn snapshot_of(_tag: usize) -> Rc<VmFullSnapshot> {
        use fireworks_microvm::{MicroVmConfig, VmManager};
        use fireworks_runtime::RuntimeProfile;

        let clock = Clock::new();
        let host = HostMemory::new(clock.clone(), 4 << 30, 60);
        let mut mgr = VmManager::new(clock, Rc::new(fireworks_sim::CostModel::default()), host);
        let mut vm = mgr.create(MicroVmConfig::default());
        mgr.boot(&mut vm).expect("boots");
        mgr.launch_runtime(
            &mut vm,
            RuntimeProfile::node(),
            "fn main(n) { return n; }",
            fireworks_lang::JitConfig::default(),
        )
        .expect("launches");
        Rc::new(mgr.snapshot(&mut vm))
    }

    #[test]
    fn lru_evicts_oldest_when_over_budget() {
        let one = snapshot_of(100);
        let bytes = one.file_bytes();
        let mut cache = SnapshotCache::new(bytes * 2 + 1024);
        cache.insert(fid("a"), one);
        cache.insert(fid("b"), snapshot_of(100));
        assert_eq!(cache.len(), 2);
        // Touch `a` so `b` is the LRU victim.
        cache.get(fid("a")).expect("a cached");
        cache.insert(fid("c"), snapshot_of(100));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(fid("a")).is_some());
        assert!(cache.get(fid("b")).is_none(), "b was evicted");
        assert!(cache.get(fid("c")).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let s = snapshot_of(100);
        let bytes = s.file_bytes();
        let mut cache = SnapshotCache::new(bytes * 10);
        cache.insert(fid("a"), s);
        cache.insert(fid("a"), snapshot_of(100));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), bytes);
    }

    #[test]
    fn oversized_snapshot_is_still_kept() {
        let s = snapshot_of(100);
        let mut cache = SnapshotCache::new(1024);
        cache.insert(fid("big"), s);
        assert_eq!(cache.len(), 1, "must keep at least the newest snapshot");
    }

    #[test]
    fn tight_budget_keeps_only_the_hottest_entry() {
        let s = snapshot_of(100);
        let bytes = s.file_bytes();
        // Budget fits exactly one snapshot: every insert evicts the rest.
        let mut cache = SnapshotCache::new(bytes);
        cache.insert(fid("a"), s);
        cache.insert(fid("b"), snapshot_of(100));
        cache.insert(fid("c"), snapshot_of(100));
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() <= bytes);
        assert_eq!(cache.evictions(), 2);
        assert!(cache.get(fid("c")).is_some(), "newest entry survives");
        assert!(cache.get(fid("a")).is_none() && cache.get(fid("b")).is_none());
    }

    #[test]
    fn eviction_respects_get_recency_not_insert_order() {
        let one = snapshot_of(100);
        let bytes = one.file_bytes();
        let mut cache = SnapshotCache::new(bytes * 3 + 1024);
        cache.insert(fid("a"), one);
        cache.insert(fid("b"), snapshot_of(100));
        cache.insert(fid("c"), snapshot_of(100));
        // Refresh the two oldest; the middle-aged `c` becomes the victim.
        cache.get(fid("a")).expect("a");
        cache.get(fid("b")).expect("b");
        cache.insert(fid("d"), snapshot_of(100));
        assert!(cache.get(fid("c")).is_none(), "least-recently-used loses");
        for name in ["a", "b", "d"] {
            assert!(cache.get(fid(name)).is_some(), "{name} survives");
        }
    }

    #[test]
    fn remove_returns_the_snapshot() {
        let mut cache = SnapshotCache::new(u64::MAX);
        cache.insert(fid("a"), snapshot_of(10));
        assert!(cache.remove(fid("a")).is_some());
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }
}
