//! Interned identifiers for the Platform API v3.
//!
//! Every hot path in the simulator used to carry function and host
//! names as strings: `InvokeRequest.function: String`, routers FNV-
//! hashing `&str` per decision, registries and meshes keyed by
//! `String`. At planet scale (128 hosts × millions of invocations) the
//! per-event hashing and cloning dominates the event loop. API v3
//! interns names once into dense `u32` identifiers — [`FunctionId`]
//! and [`HostId`] — and keys everything downstream by id:
//!
//! - equality and hashing are single-word operations;
//! - registries become dense id-indexed tables ([`IdMap`]) instead of
//!   string hash maps;
//! - the human-readable name is recovered only at the edges (error
//!   construction, metric labels, JSON export) via [`FunctionId::name`].
//!
//! Interning goes through a per-thread [`SymbolTable`]: the simulator
//! is single-threaded by construction (everything is `Rc`-based), so a
//! thread-local table gives every component the same id for the same
//! name with no handle-threading. Ids are assigned in first-intern
//! order, which is itself a pure function of program flow — two
//! same-seed runs intern in the same order and therefore agree on
//! every id, keeping byte-identical determinism.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An interned function name.
///
/// Mint one with [`FunctionId::intern`] (or the free function
/// [`fid`]); recover the name with [`FunctionId::name`]. Comparing,
/// hashing, and indexing by `FunctionId` never touches the string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub struct FunctionId(u32);

impl FunctionId {
    /// Interns `name` in the thread-local [`SymbolTable`] and returns
    /// its id. Idempotent: the same name always yields the same id
    /// within a thread.
    pub fn intern(name: &str) -> FunctionId {
        fid(name)
    }

    /// The interned name, cheaply cloned out of the table.
    ///
    /// # Panics
    ///
    /// Panics if the id was not minted by this thread's table (e.g. a
    /// raw id fabricated with [`FunctionId::from_raw`] that was never
    /// interned).
    pub fn name(self) -> Rc<str> {
        GLOBAL.with(|t| {
            t.borrow()
                .resolve(self)
                .unwrap_or_else(|| panic!("FunctionId({}) was never interned", self.0))
        })
    }

    /// The raw dense index (0-based, in first-intern order).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`FunctionId::raw`]. Only meaningful for
    /// values obtained from `raw` on the same thread.
    pub fn from_raw(raw: u32) -> FunctionId {
        FunctionId(raw)
    }
}

impl fmt::Debug for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = GLOBAL.with(|t| t.borrow().resolve(*self));
        match name {
            Some(name) => write!(f, "FunctionId({} \"{name}\")", self.0),
            None => write!(f, "FunctionId({})", self.0),
        }
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = GLOBAL.with(|t| t.borrow().resolve(*self));
        match name {
            Some(name) => write!(f, "{name}"),
            None => write!(f, "#{}", self.0),
        }
    }
}

/// A typed cluster host index.
///
/// Hosts are dense 0-based indices assigned by the cluster in creation
/// order (plus reserved sentinel slots like the elastic archive), so no
/// interning is needed — the type exists so host ids and other integers
/// cannot be confused at API boundaries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub struct HostId(u32);

impl HostId {
    /// Wraps a dense host index.
    pub fn from_index(index: usize) -> HostId {
        HostId(u32::try_from(index).expect("host index fits u32"))
    }

    /// The dense index, for table addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostId({})", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A bidirectional name ↔ id table.
///
/// The simulator normally uses the thread-local instance through
/// [`fid`] / [`FunctionId::name`], but the table is a plain value type
/// and can be used standalone:
///
/// ```
/// use fireworks_core::symbols::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let hot = table.intern("hot");
/// assert_eq!(table.intern("hot"), hot, "interning is idempotent");
/// assert_eq!(table.resolve(hot).as_deref(), Some("hot"));
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SymbolTable {
    names: Vec<Rc<str>>,
    index: HashMap<Rc<str>, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, assigning the next dense id on first sight.
    pub fn intern(&mut self, name: &str) -> FunctionId {
        if let Some(&id) = self.index.get(name) {
            return FunctionId(id);
        }
        let id = u32::try_from(self.names.len()).expect("symbol table fits u32");
        let name: Rc<str> = Rc::from(name);
        self.names.push(name.clone());
        self.index.insert(name, id);
        FunctionId(id)
    }

    /// The name behind `id`, if `id` was minted by this table.
    pub fn resolve(&self, id: FunctionId) -> Option<Rc<str>> {
        self.names.get(id.0 as usize).cloned()
    }

    /// The id for `name`, if already interned (no insertion).
    pub fn lookup(&self, name: &str) -> Option<FunctionId> {
        self.index.get(name).map(|&id| FunctionId(id))
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

thread_local! {
    static GLOBAL: RefCell<SymbolTable> = RefCell::new(SymbolTable::new());
}

/// Interns `name` in the thread-local table: the short spelling of
/// [`FunctionId::intern`] for call sites that mint many ids.
pub fn fid(name: &str) -> FunctionId {
    GLOBAL.with(|t| t.borrow_mut().intern(name))
}

/// A dense id-indexed map: `Vec`-backed storage addressed by
/// [`FunctionId::raw`], replacing `HashMap<String, V>` on hot paths.
///
/// Lookups are a bounds check and an index; iteration is in ascending
/// id order (first-intern order), which is deterministic for
/// deterministic program flows. Slots for ids never inserted cost one
/// `Option<V>` each — fine for the dense ids the interner hands out.
#[derive(Debug, Clone)]
pub struct IdMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        IdMap {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<V> IdMap<V> {
    /// An empty map.
    pub fn new() -> IdMap<V> {
        IdMap::default()
    }

    /// The value for `id`, if present.
    #[inline]
    pub fn get(&self, id: FunctionId) -> Option<&V> {
        self.slots.get(id.raw() as usize).and_then(Option::as_ref)
    }

    /// The value for `id`, mutably, if present.
    #[inline]
    pub fn get_mut(&mut self, id: FunctionId) -> Option<&mut V> {
        self.slots
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
    }

    /// Whether `id` has a value.
    #[inline]
    pub fn contains(&self, id: FunctionId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts (or replaces) the value for `id`, returning the previous
    /// value if any. Grows the backing table as needed.
    pub fn insert(&mut self, id: FunctionId, value: V) -> Option<V> {
        let idx = id.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `id`.
    pub fn remove(&mut self, id: FunctionId) -> Option<V> {
        let old = self.slots.get_mut(id.raw() as usize)?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Present `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (FunctionId(i as u32), v)))
    }

    /// Present values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Present values, mutably, in ascending id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Present ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = FunctionId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| FunctionId(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = fid("sym-test-a");
        let b = fid("sym-test-b");
        assert_ne!(a, b);
        assert_eq!(fid("sym-test-a"), a);
        assert_eq!(a.name().as_ref(), "sym-test-a");
        assert_eq!(FunctionId::from_raw(a.raw()), a);
        assert_eq!(format!("{a}"), "sym-test-a");
    }

    #[test]
    fn standalone_table_round_trips() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        let x = t.intern("x");
        let y = t.intern("y");
        assert_eq!(t.intern("x"), x);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(x).as_deref(), Some("x"));
        assert_eq!(t.lookup("y"), Some(y));
        assert_eq!(t.lookup("z"), None);
        assert_eq!(t.resolve(FunctionId::from_raw(99)), None);
    }

    #[test]
    fn host_ids_wrap_dense_indices() {
        let h = HostId::from_index(7);
        assert_eq!(h.index(), 7);
        assert_eq!(h.raw(), 7);
        assert_eq!(format!("{h}"), "7");
        assert!(HostId::from_index(1) < HostId::from_index(2));
    }

    #[test]
    fn id_map_inserts_removes_and_iterates_in_id_order() {
        let a = fid("idmap-a");
        let b = fid("idmap-b");
        let mut m: IdMap<u64> = IdMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(b, 2), None);
        assert_eq!(m.insert(a, 1), None);
        assert_eq!(m.insert(a, 10), Some(1));
        assert_eq!(m.len(), 2);
        assert!(m.contains(a));
        assert_eq!(m.get(b), Some(&2));
        *m.get_mut(b).expect("present") += 1;
        let pairs: Vec<(FunctionId, u64)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(a, 10), (b, 3)], "ascending id order");
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(m.remove(b), Some(3));
        assert_eq!(m.remove(b), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![10]);
    }
}
