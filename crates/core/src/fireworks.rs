//! The FIREWORKS platform.

use std::cell::RefCell;
use std::rc::Rc;

use fireworks_annotator::{annotate, Annotated, AnnotationConfig};
use fireworks_guestmem::{ChunkHash, FrameId, SnapshotFile};
use fireworks_lang::{JitConfig, JitPolicy, Value};
use fireworks_microvm::reap::PagingCosts;
use fireworks_microvm::{
    MicroVm, MicroVmConfig, ReapMode, ReapSession, VmError, VmFullSnapshot, VmManager, WorkingSet,
};
use fireworks_netsim::{Ip, Mac, NsId};
use fireworks_obs::cat;
use fireworks_runtime::guest::RunOutcome;
use fireworks_runtime::RuntimeProfile;
use fireworks_sandbox::{IoPath, IoPathKind, IsolationLevel};
use fireworks_sim::fault::{FaultSite, FaultTrigger};
use fireworks_sim::trace::{Phase, Trace};
use fireworks_sim::Nanos;
use fireworks_store::ChunkStore;

use crate::api::{
    ConcurrentPlatform, FunctionSpec, InFlightToken, InstallReport, Invocation, InvokeRequest,
    Platform, PlatformError, SnapshotResidency, StartKind, StoreAudit,
};
use crate::audit::{SecurityAudit, SecurityPolicy};
use crate::cache::SnapshotCache;
use crate::config::{PagingPolicy, PlatformConfig, RecoveryPolicy, SnapshotStorePolicy};
use crate::env::PlatformEnv;
use crate::host::{GuestHost, NetMode};
use crate::mesh::SharedChunkMesh;
use crate::symbols::{fid, FunctionId, HostId, IdMap};

/// The guest IP baked into every snapshot (identical across clones —
/// paper Fig. 5's `A.A.A.A`).
pub const GUEST_IP: Ip = Ip::new(172, 16, 0, 2);
/// The guest MAC baked into every snapshot.
pub const GUEST_MAC: Mac = Mac([0x06, 0x00, 0xac, 0x10, 0x00, 0x02]);
/// Tap device name baked into every snapshot.
pub const GUEST_TAP: &str = "tap0";

/// Reliability counters for one installed function (see
/// [`FireworksPlatform::health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionHealth {
    /// Infrastructure failures since the last successful invocation.
    pub consecutive_failures: u32,
    /// When the circuit breaker half-opens, if it is open.
    pub circuit_open_until: Option<Nanos>,
    /// Invocations that succeeded only after restore/boot retries.
    pub recoveries: u64,
    /// Snapshots quarantined after failing their integrity check.
    pub quarantines: u64,
    /// Snapshot rebuilds from source (security refreshes, cache misses,
    /// and corruption recoveries).
    pub rebuilds: u64,
    /// Restore attempts that had to be retried (transient read faults,
    /// restore crashes, or integrity failures). Also counted in the
    /// metrics registry as `core.recovery.restore_retries{function=..}`.
    pub restore_retries: u64,
    /// Invocations whose REAP prefetch failed and degraded to per-page
    /// major faults. Also `core.reap.prefetch_degraded{function=..}`.
    pub prefetch_degraded: u64,
}

struct FunctionEntry {
    spec: FunctionSpec,
    annotated: Annotated,
    profile: RuntimeProfile,
    install_report: InstallReport,
    clones_since_snapshot: u64,
    refreshes: u64,
    refresh_time: Nanos,
    /// REAP-recorded working set (ColdStorage + reap only).
    working_set: Option<WorkingSet>,
    /// Infrastructure failures since the last success (breaker input).
    consecutive_failures: u32,
    /// Open-circuit deadline, if the breaker has tripped.
    circuit_open_until: Option<Nanos>,
    /// Invocations that needed at least one retry to succeed.
    recoveries: u64,
    /// Snapshots evicted for failing their integrity check.
    quarantines: u64,
    /// Restore attempts that had to be retried.
    restore_retries: u64,
    /// Invocations whose REAP prefetch degraded to major faults.
    prefetch_degraded: u64,
}

/// A restored microVM kept resident after its invocation (for memory
/// density experiments — paper §5.4).
#[derive(Debug)]
pub struct ResidentClone {
    vm: MicroVm,
    ns: NsId,
    /// The clone's instance id (MMDS).
    pub instance: String,
}

impl ResidentClone {
    /// Proportional set size of the clone's guest memory.
    pub fn pss_bytes(&self) -> u64 {
        self.vm.pss_bytes()
    }

    /// Resident set size of the clone's guest memory.
    pub fn rss_bytes(&self) -> u64 {
        self.vm.rss_bytes()
    }

    /// Ages the clone by `extra_ops` guest ops of continued service
    /// (models the paper's Fig. 10 methodology of running every microVM
    /// until the host swaps).
    pub fn age_ops(&mut self, extra_ops: u64) {
        self.vm.age_ops(extra_ops);
    }
}

impl InFlightToken for ResidentClone {
    fn pss_bytes(&self) -> u64 {
        ResidentClone::pss_bytes(self)
    }
}

/// The Fireworks serverless platform.
pub struct FireworksPlatform {
    env: PlatformEnv,
    mgr: VmManager,
    registry: IdMap<FunctionEntry>,
    cache: SnapshotCache,
    next_instance: u64,
    security: SecurityPolicy,
    paging: PagingPolicy,
    recovery: RecoveryPolicy,
    jit: JitConfig,
    /// Content-addressed chunk store
    /// ([`SnapshotStorePolicy::Dedup`] only).
    chunk_store: Option<Rc<RefCell<ChunkStore>>>,
    /// Chunking granularity for ingests (Dedup only).
    chunk_pages: usize,
    /// Whether a cache miss may be served by fetching missing chunks from
    /// a mesh peer instead of rebuilding from source.
    delta_fetch: bool,
    /// The cluster's chunk mesh and this host's id in it, once attached.
    mesh: Option<(SharedChunkMesh, HostId)>,
}

impl FireworksPlatform {
    /// Creates a platform with the default [`PlatformConfig`] (generous
    /// snapshot-cache budget, default recovery/paging/security).
    pub fn new(env: PlatformEnv) -> Self {
        FireworksPlatform::with_config(env, PlatformConfig::default())
    }

    /// Creates a platform with an explicit construction-time config:
    /// snapshot-cache budget (paper §6: disk-space overhead), recovery,
    /// paging, and security policies. The config is fixed for the
    /// platform's lifetime.
    pub fn with_config(env: PlatformEnv, config: PlatformConfig) -> Self {
        let mut mgr = VmManager::new(env.clock.clone(), env.costs.clone(), env.host_mem.clone());
        mgr.set_fault_injector(env.injector.clone());
        mgr.set_obs(env.obs.clone());
        let mut cache = SnapshotCache::new(config.cache_budget_bytes);
        cache.set_obs(env.obs.clone());
        let (chunk_store, chunk_pages, delta_fetch) = match config.snapshot_store {
            SnapshotStorePolicy::Flat => (None, 0, false),
            SnapshotStorePolicy::Dedup {
                chunk_pages,
                delta_fetch,
            } => {
                let mut store = ChunkStore::new(env.host_mem.clone());
                store.set_obs(env.obs.clone());
                let store = Rc::new(RefCell::new(store));
                cache.attach_store(store.clone());
                (Some(store), chunk_pages, delta_fetch)
            }
        };
        // Layer the config's outage/loss knobs on top of the
        // environment's base fault plan. Probability-zero rules still
        // consume RNG draws, so only arm sites that can actually fire —
        // the default config must not perturb an armed plan's schedule.
        if config.store_outage > 0.0 {
            env.injector.borrow_mut().arm(
                FaultSite::StoreUnavailable,
                FaultTrigger::Probability(config.store_outage),
            );
        }
        if config.packet_loss > 0.0 {
            env.injector.borrow_mut().arm(
                FaultSite::NetLoss,
                FaultTrigger::Probability(config.packet_loss),
            );
        }
        FireworksPlatform {
            env,
            mgr,
            registry: IdMap::new(),
            cache,
            next_instance: 1,
            security: config.security,
            paging: config.paging,
            recovery: config.recovery,
            jit: config.jit,
            chunk_store,
            chunk_pages,
            delta_fetch,
            mesh: None,
        }
    }

    /// The environment this platform runs on.
    pub fn env(&self) -> &PlatformEnv {
        &self.env
    }

    /// Snapshot-cache eviction count (for the disk-budget ablation).
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Chunk-store statistics — `None` unless the platform runs the
    /// content-addressed store ([`SnapshotStorePolicy::Dedup`]).
    pub fn chunk_stats(&self) -> Option<fireworks_store::ChunkStoreStats> {
        self.chunk_store.as_ref().map(|s| s.borrow().stats())
    }

    fn guest_host(&self, default_params: &Value) -> GuestHost {
        GuestHost::new(
            self.env.clock.clone(),
            IoPath::new(IoPathKind::VirtioBlk, self.env.costs.clone()),
            &self.env.costs.net,
            NetMode::ThroughNat,
            self.env.costs.microvm.mmds_lookup,
            self.env.bus.clone(),
            self.env.store.clone(),
            default_params.deep_clone(),
        )
    }

    /// A host for the install phase: same cost model, but side effects go
    /// to a staging store and bus so JIT warm-up never pollutes
    /// production state.
    fn install_host(&self, default_params: &Value) -> GuestHost {
        use std::cell::RefCell;
        let scratch_store = Rc::new(RefCell::new(fireworks_store::DocumentStore::new(
            self.env.clock.clone(),
            fireworks_store::StoreCosts::default(),
        )));
        let scratch_bus = Rc::new(RefCell::new(fireworks_msgbus::MessageBus::new(
            self.env.clock.clone(),
            self.env.costs.bus.clone(),
        )));
        GuestHost::new(
            self.env.clock.clone(),
            IoPath::new(IoPathKind::VirtioBlk, self.env.costs.clone()),
            &self.env.costs.net,
            NetMode::ThroughNat,
            self.env.costs.microvm.mmds_lookup,
            scratch_bus,
            scratch_store,
            default_params.deep_clone(),
        )
    }

    /// Runs the install pipeline and returns the snapshot.
    fn build_snapshot(
        &mut self,
        spec: &FunctionSpec,
        annotated: &Annotated,
        profile: &RuntimeProfile,
    ) -> Result<Rc<VmFullSnapshot>, PlatformError> {
        let clock = self.env.clock.clone();
        let mut vm = self.mgr.create(MicroVmConfig::default());
        // Boot crashes during install are transient: the VM stays in the
        // pre-boot state, so wait out the backoff and try again.
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.mgr.boot(&mut vm) {
                Ok(()) => break,
                Err(err) if attempt >= self.recovery.max_attempts => {
                    return Err(PlatformError::Vm(err))
                }
                Err(_) => {
                    clock.advance(self.recovery.backoff(attempt));
                }
            }
        }
        self.mgr.launch_runtime(
            &mut vm,
            profile.clone(),
            &annotated.source,
            // The platform's JIT shape, with the install-time policy
            // pinned: annotated functions compile eagerly so the
            // snapshot is taken post-JIT.
            self.jit.with_policy(Some(JitPolicy::AnnotatedEager)),
        )?;
        let mut host = self.install_host(&spec.default_params);
        {
            let rt = vm
                .runtime_mut()
                .ok_or_else(|| PlatformError::Other("runtime failed to launch".into()))?;
            rt.run_toplevel(&clock, &mut host)?;
            rt.start(&annotated.entry, Vec::new())?;
            match rt.run(&clock, &mut host)? {
                RunOutcome::SnapshotPoint => {}
                RunOutcome::Done(_) => {
                    return Err(PlatformError::Other(format!(
                        "`{}` finished without reaching the snapshot point",
                        spec.name
                    )))
                }
            }
            // The warm-up served real requests: the snapshot starts warm.
            rt.mark_warmed();
        }
        let snapshot = Rc::new(self.mgr.snapshot(&mut vm));
        Ok(snapshot)
    }

    /// Regenerates a function's snapshot (security refresh / cache-miss
    /// reinstall). Returns the new snapshot.
    fn refresh_snapshot(
        &mut self,
        function: FunctionId,
    ) -> Result<Rc<VmFullSnapshot>, PlatformError> {
        let entry = self
            .registry
            .get(function)
            .ok_or_else(|| PlatformError::UnknownFunction(function.name().to_string()))?;
        let spec = entry.spec.clone();
        let annotated = entry.annotated.clone();
        let profile = entry.profile.clone();
        let t0 = self.env.clock.now();
        let snapshot = self.build_snapshot(&spec, &annotated, &profile)?;
        let took = self.env.clock.now() - t0;
        let snapshot = self.cache_insert(function, snapshot);
        let entry = self
            .registry
            .get_mut(function)
            .ok_or_else(|| PlatformError::UnknownFunction(function.name().to_string()))?;
        entry.clones_since_snapshot = 0;
        entry.refreshes += 1;
        entry.refresh_time += took;
        Ok(snapshot)
    }

    /// Caches a snapshot under the active store policy.
    ///
    /// Flat: the snapshot goes into the LRU as-is. Dedup: its pages are
    /// ingested into the chunk store first and the cached copy is a
    /// *canonical remap* — a snapshot whose frame list points at the
    /// store's canonical chunk frames — so byte-identical chunks across
    /// functions occupy host memory once and the manifest is published to
    /// the mesh for peers to delta-fetch. Returns the snapshot actually
    /// cached (the canonical remap in dedup mode).
    fn cache_insert(
        &mut self,
        function: FunctionId,
        snapshot: Rc<VmFullSnapshot>,
    ) -> Rc<VmFullSnapshot> {
        let (cached, evicted) = match &self.chunk_store {
            Some(store) => {
                let template = snapshot.template();
                let (manifest, frames) = store
                    .borrow_mut()
                    .ingest_snapshot(snapshot.mem(), self.chunk_pages);
                let mem = SnapshotFile::from_mapped(
                    &self.env.host_mem,
                    snapshot.mem().size_bytes(),
                    frames,
                    snapshot.mem().device_state().to_vec(),
                );
                let canonical = Rc::new(VmFullSnapshot::from_template(mem, &template));
                let evicted =
                    self.cache
                        .insert_dedup(function, canonical.clone(), manifest.clone());
                if let Some((mesh, id)) = &self.mesh {
                    mesh.borrow_mut().publish(*id, function, manifest, template);
                }
                (canonical, evicted)
            }
            None => {
                let evicted = self.cache.insert(function, snapshot.clone());
                (snapshot, evicted)
            }
        };
        if let Some((mesh, id)) = &self.mesh {
            let mut mesh = mesh.borrow_mut();
            for &victim in &evicted {
                mesh.retract(*id, victim);
            }
        }
        cached
    }

    /// Drops a snapshot from the cache and withdraws its mesh
    /// publication (quarantine, security refresh).
    fn uncache(&mut self, function: FunctionId) {
        self.cache.remove(function);
        if let Some((mesh, id)) = &self.mesh {
            mesh.borrow_mut().retract(*id, function);
        }
    }

    /// Serves a cache miss from the cluster mesh: picks a donor holding
    /// the function's full chunk set, ships only the chunks this host is
    /// missing over the simulated network (64 KiB segments with the
    /// network's loss/retransmit machinery), and reassembles the snapshot
    /// from store chunks. The wire time is charged *after* subtracting
    /// the restore-side work it can overlap with (a prefetch pipeline:
    /// chunks stream in while the restore maps already-present pages).
    ///
    /// Returns `None` — falling back to rebuild-from-source — when
    /// delta fetch is off, no donor qualifies, the donor crashes
    /// mid-transfer, or a chunk transfer exhausts its retries.
    fn fetch_snapshot_delta(&mut self, function: FunctionId) -> Option<Rc<VmFullSnapshot>> {
        if !self.delta_fetch {
            return None;
        }
        let store = self.chunk_store.clone()?;
        let (mesh, my_id) = self.mesh.clone()?;
        let donor = mesh.borrow().donor_for(function, my_id)?;
        let obs = self.env.obs.clone();
        let rec = obs.recorder().clone();
        let sp = rec.start_phase("snapshot_delta_fetch", cat::SNAPSHOT, Phase::Startup);
        rec.attr(sp, "donor", donor.host.raw() as u64);

        let missing = store.borrow().missing_chunks(&donor.manifest);
        let peer = Ip::new(10, 42, 0, donor.host.index() as u8);
        let mut staged: Vec<(ChunkHash, Vec<(usize, FrameId)>)> = Vec::new();
        let mut wire = Nanos::ZERO;
        let mut fetched_bytes = 0u64;
        let mut failed = false;
        for &idx in &missing {
            let chunk = &donor.manifest.chunks[idx];
            // The donor can drop out mid-transfer; its crash is drawn on
            // *its* injector, so the schedule matches what the cluster
            // would have seen at the donor's own service boundaries.
            if donor
                .injector
                .borrow_mut()
                .should_fail(FaultSite::HostCrash)
            {
                mesh.borrow_mut().mark_dead(donor.host);
                rec.instant(format!("donor_crash:{}", donor.host), cat::FAULT);
                failed = true;
                break;
            }
            match self.env.net.borrow().transfer_cost(peer, chunk.bytes) {
                Ok(report) => {
                    wire += report.elapsed;
                    fetched_bytes += chunk.bytes;
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
            let donor_store = donor.store.borrow();
            let Some(run) = donor_store.chunk_frames(chunk.hash) else {
                failed = true;
                break;
            };
            let frames: Vec<(usize, FrameId)> = run
                .iter()
                .map(|&(page, f)| {
                    (
                        page,
                        self.env.host_mem.clone_frame_from(donor_store.host(), f),
                    )
                })
                .collect();
            staged.push((chunk.hash, frames));
        }
        if failed {
            for (_, frames) in staged {
                for (_, f) in frames {
                    self.env.host_mem.release(f);
                }
            }
            let name = function.name();
            obs.metrics()
                .inc("core.delta.fallbacks", &[("function", &name)]);
            rec.instant(format!("delta_fallback:{name}"), cat::SNAPSHOT);
            rec.end(sp);
            return None;
        }

        // Commit: the manifest takes one reference on every chunk —
        // already-present ones are retained, shipped ones adopted.
        {
            let mut st = store.borrow_mut();
            let missing_set: std::collections::BTreeSet<usize> = missing.iter().copied().collect();
            for (i, chunk) in donor.manifest.chunks.iter().enumerate() {
                if !missing_set.contains(&i) {
                    st.retain_chunk(chunk.hash);
                }
            }
            for (hash, frames) in staged {
                st.ingest_remote_chunk(hash, frames);
            }
        }
        let frames = store.borrow().claim_manifest_frames(&donor.manifest)?;
        let mem = SnapshotFile::from_mapped(
            &self.env.host_mem,
            donor.manifest.size_bytes,
            frames,
            donor.manifest.device_state.clone(),
        );
        let snapshot = Rc::new(VmFullSnapshot::from_template(mem, &donor.template));

        // Prefetch pipeline: the transfer overlaps the restore's base
        // cost and page mapping, so only the excess wire time is charged.
        let pages = donor.manifest.total_pages() as u64;
        let overlap = self.env.costs.microvm.snapshot_restore_base
            + self.env.costs.microvm.snapshot_map_per_page * pages;
        let charged = wire.saturating_sub(overlap);
        self.env.clock.advance(charged);

        let name = function.name();
        let labels: &[(&'static str, &str)] = &[("function", &name)];
        let m = obs.metrics();
        m.inc("core.delta.fetches", labels);
        m.add("core.delta.chunks_fetched", labels, missing.len() as u64);
        m.add("core.delta.bytes_fetched", labels, fetched_bytes);
        m.observe("core.delta.fetch_ns", labels, wire.as_nanos());
        m.add(
            "core.delta.overlap_saved_ns",
            &[],
            (wire - charged).as_nanos(),
        );

        let evicted = self
            .cache
            .insert_dedup(function, snapshot.clone(), donor.manifest.clone());
        {
            let mut mesh = mesh.borrow_mut();
            mesh.publish(my_id, function, donor.manifest, donor.template);
            for &victim in &evicted {
                mesh.retract(my_id, victim);
            }
        }
        rec.end(sp);
        Some(snapshot)
    }

    /// Records an infrastructure failure against `name`'s breaker,
    /// opening the circuit once the threshold is reached.
    fn note_infra_failure(&mut self, function: FunctionId) {
        let now = self.env.clock.now();
        let (threshold, cooldown) = (
            self.recovery.circuit_threshold,
            self.recovery.circuit_cooldown,
        );
        if let Some(entry) = self.registry.get_mut(function) {
            entry.consecutive_failures += 1;
            if entry.consecutive_failures >= threshold {
                entry.circuit_open_until = Some(now + cooldown);
            }
        }
    }

    /// The common invoke path; returns the invocation and the still-live
    /// clone. `trace_ctx` is the caller's distributed-tracing context:
    /// when set and no span is already open (the direct blocking-invoke
    /// path), the invocation's root span is parented under it so the
    /// platform's internals join the request's cross-host tree.
    fn invoke_internal(
        &mut self,
        function: FunctionId,
        args: &Value,
        trace_ctx: Option<fireworks_obs::SpanContext>,
    ) -> Result<(Invocation, ResidentClone), PlatformError> {
        let clock = self.env.clock.clone();
        // Resolve the label once; every metric and span below borrows it.
        let name = function.name();
        let name_labels: &[(&'static str, &str)] = &[("function", &name)];
        let (default_params, known_working_set, timeout) = {
            let entry = self
                .registry
                .get(function)
                .ok_or_else(|| PlatformError::UnknownFunction(name.to_string()))?;
            // Open breaker: fail fast without touching any resources.
            // Past the cooldown the attempt is let through (half-open);
            // it either resets the breaker or re-opens it.
            if let Some(until) = entry.circuit_open_until {
                if clock.now() < until {
                    return Err(PlatformError::CircuitOpen {
                        function: name.to_string(),
                        until,
                    });
                }
            }
            (
                entry.spec.default_params.deep_clone(),
                entry.working_set.clone(),
                entry.spec.timeout,
            )
        };

        // Root observability span for the invocation; every recorder
        // span, instant, and counter below lands underneath it. It must
        // be closed on every exit path (closing it also closes any still-
        // open descendants).
        let obs = self.env.obs.clone();
        let rec = obs.recorder().clone();
        // Inside a cluster driver the service span is already open and
        // the plain start() nests (and inherits the trace) under it; on
        // the direct path an explicit context adopts the caller's tree.
        let inv_span = match trace_ctx.filter(|_| rec.current().is_none()) {
            Some(ctx) => rec.start_under(ctx.parent, "invoke", cat::INVOKE),
            None => rec.start("invoke", cat::INVOKE),
        };
        rec.attr(inv_span, "function", &*name);
        obs.metrics().inc("core.invoke.attempts", name_labels);
        let t_start = clock.now();

        let mut trace = Trace::new();

        // Snapshot lookup; on an LRU miss the platform first tries to
        // delta-fetch the snapshot's missing chunks from a mesh peer
        // (content-addressed store only), and otherwise must rebuild it
        // from source (the §6 disk-budget trade-off) — either way charged
        // to this invocation as a labelled start-up span.
        let mut snapshot = match self.cache.get(function) {
            Some(s) => s,
            None => {
                let t0 = clock.now();
                match self.fetch_snapshot_delta(function) {
                    Some(s) => {
                        trace.record("snapshot_delta_fetch", Phase::Startup, t0, clock.now());
                        s
                    }
                    None => {
                        let sp = rec.start_phase("snapshot_rebuild", cat::SNAPSHOT, Phase::Startup);
                        let s = self.refresh_snapshot(function);
                        rec.end(sp);
                        let s = match s {
                            Ok(s) => s,
                            Err(e) => {
                                rec.end(inv_span);
                                return Err(e);
                            }
                        };
                        trace.record("snapshot_rebuild", Phase::Startup, t0, clock.now());
                        s
                    }
                }
            }
        };

        // Parameter passer: produce the arguments into the per-instance
        // topic before resuming (paper §3.6).
        let instance = format!("vm-{}", self.next_instance);
        self.next_instance += 1;
        let sp = rec.start_phase("param_produce", cat::INVOKE, Phase::Other);
        trace.scope(&clock, "param_produce", Phase::Other, || {
            self.env.bus.borrow_mut().produce(
                &format!("params-{instance}"),
                args.deep_clone(),
                args.heap_estimate() as u64,
            );
        });
        rec.end(sp);

        // Network namespace + NAT for the clone (paper §3.5).
        let sp = rec.start_phase("netns_setup", cat::NET, Phase::Startup);
        let ns = trace.scope(&clock, "netns_setup", Phase::Startup, || {
            let mut net = self.env.net.borrow_mut();
            let ns = net.create_namespace();
            net.attach_tap(ns, GUEST_TAP, GUEST_IP, GUEST_MAC)?;
            let ext = net.alloc_external_ip(ns)?;
            net.install_nat(ns, ext, GUEST_IP)?;
            Ok::<NsId, PlatformError>(ns)
        });
        rec.end(sp);
        let ns = match ns {
            Ok(ns) => ns,
            Err(e) => {
                rec.end(inv_span);
                return Err(e);
            }
        };

        // Restore the snapshot, recovering from infrastructure faults:
        // transient failures (read errors, restore crashes) retry after an
        // exponential virtual-time backoff; a failed integrity check
        // quarantines the cached snapshot and rebuilds it from source —
        // this start degrades to roughly a cold install, but the
        // invocation still succeeds. A failure that survives the policy
        // tears the clone's resources down, counts toward the function's
        // circuit breaker, and surfaces as a typed error.
        let mut attempt = 0u32;
        let mut recovered = false;
        let mut restore_retries_now = 0u64;
        let restored = loop {
            attempt += 1;
            // `VmManager::restore` opens its own `snapshot_restore` span
            // (with read/verify/map children) under `inv_span`, so only
            // the retry bookkeeping is recorded here.
            let result = trace.scope(&clock, "snapshot_restore", Phase::Startup, || {
                self.mgr.restore(&snapshot)
            });
            match result {
                Ok(vm) => break Ok(vm),
                Err(err) if attempt >= self.recovery.max_attempts => {
                    break Err(PlatformError::Vm(err))
                }
                Err(VmError::Corrupt(_)) => {
                    // Every later restore would fail the same checksums:
                    // evict the damaged snapshot and rebuild from source.
                    restore_retries_now += 1;
                    obs.metrics()
                        .inc("core.recovery.restore_retries", name_labels);
                    self.uncache(function);
                    if let Some(entry) = self.registry.get_mut(function) {
                        entry.quarantines += 1;
                    }
                    obs.metrics().inc("core.recovery.quarantines", name_labels);
                    rec.instant_with(
                        format!("snapshot_quarantine:{name}"),
                        cat::CACHE,
                        vec![("attempt", attempt.into())],
                    );
                    let t0 = clock.now();
                    let sp = rec.start_phase("snapshot_rebuild", cat::SNAPSHOT, Phase::Startup);
                    let refreshed = self.refresh_snapshot(function);
                    rec.end(sp);
                    match refreshed {
                        Ok(s) => {
                            trace.record("snapshot_rebuild", Phase::Startup, t0, clock.now());
                            snapshot = s;
                            recovered = true;
                        }
                        Err(e) => break Err(e),
                    }
                }
                Err(_transient) => {
                    restore_retries_now += 1;
                    obs.metrics()
                        .inc("core.recovery.restore_retries", name_labels);
                    let sp = rec.start_phase("recovery_backoff", cat::RESTORE, Phase::Startup);
                    trace.scope(&clock, "recovery_backoff", Phase::Startup, || {
                        clock.advance(self.recovery.backoff(attempt));
                    });
                    rec.end(sp);
                    recovered = true;
                }
            }
        };
        let mut vm = match restored {
            Ok(vm) => vm,
            Err(e) => {
                let _ = self.env.net.borrow_mut().destroy_namespace(ns);
                self.env
                    .bus
                    .borrow_mut()
                    .delete_topic(&format!("params-{instance}"));
                self.note_infra_failure(function);
                if let Some(entry) = self.registry.get_mut(function) {
                    entry.restore_retries += restore_retries_now;
                }
                obs.metrics().inc("core.invoke.failures", name_labels);
                // The failed invocation returns no trace; its fault events
                // go to the recorder (as instants) instead of bleeding
                // into the next invocation's trace.
                let fault_trace = self.env.injector.borrow_mut().drain_trace();
                rec.ingest_trace(&fault_trace, cat::FAULT);
                rec.end(inv_span);
                return Err(e);
            }
        };
        vm.mmds_set("instance-id", &instance);

        // Cold-storage paging (the REAP extension, §7): when snapshot
        // pages are not in the host page cache, the invocation's working
        // set must come from storage — one major fault per page, or one
        // bulk prefetch of the recorded set.
        let mut recorded_ws: Option<WorkingSet> = None;
        let mut prefetch_degraded_now = false;
        if let PagingPolicy::ColdStorage { reap } = self.paging {
            let mode = match (&known_working_set, reap) {
                (_, false) => ReapMode::Off,
                (Some(_), true) => ReapMode::Prefetch,
                (None, true) => ReapMode::Record,
            };
            let ws = known_working_set.unwrap_or_default();
            let injector = self.env.injector.clone();
            let sp = rec.start_phase("paging", cat::PREFETCH, Phase::Exec);
            recorded_ws = trace.scope(&clock, "paging", Phase::Exec, || {
                let mut session = match ReapSession::start_observed(
                    &clock,
                    mode,
                    PagingCosts::default(),
                    ws.clone(),
                    Some(&injector),
                    Some(snapshot.mem()),
                    Some(&obs),
                ) {
                    Ok(session) => session,
                    // Prefetch failed (read fault or corrupt working-set
                    // page): degrade gracefully to per-page major faults
                    // instead of failing the invocation.
                    Err(_) => {
                        prefetch_degraded_now = true;
                        ReapSession::start(&clock, ReapMode::Off, PagingCosts::default(), ws)
                    }
                };
                for (first, count) in vm.working_set_ranges() {
                    session.touch_range(&clock, first, count);
                }
                session.finish()
            });
            rec.end(sp);
            if prefetch_degraded_now {
                obs.metrics()
                    .inc("core.reap.prefetch_degraded", name_labels);
                rec.instant(format!("prefetch_degraded:{name}"), cat::PREFETCH);
            }
        }

        // Resume right after the snapshot point. Any failure from here on
        // must tear down the clone's namespace and parameter topic.
        let mut host = self.guest_host(&default_params);
        host.mmds_set("instance-id", &instance);
        let run_result = (|| {
            let rt = vm
                .runtime_mut()
                .ok_or_else(|| PlatformError::Other("snapshot has no runtime".into()))?;
            if !rt.is_suspended() {
                return Err(PlatformError::Other(
                    "snapshot is not suspended at the resume point".into(),
                ));
            }
            // Request-handling framework path (already warmed into the
            // post-JIT snapshot, so this is the steady-state cost).
            let sp = rec.start_phase("framework", cat::EXEC, Phase::Exec);
            trace.scope(&clock, "framework", Phase::Exec, || {
                rt.charge_request_overhead(&clock);
            });
            rec.end(sp);
            rt.set_invocation_timeout(timeout);
            loop {
                match rt.run(&clock, &mut host) {
                    Ok(RunOutcome::Done(r)) => return Ok(r),
                    Ok(RunOutcome::SnapshotPoint) => continue,
                    Err(fireworks_lang::LangError::Timeout { ops }) => {
                        return Err(PlatformError::Timeout {
                            function: name.to_string(),
                            ops,
                        })
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        })();
        let result = match run_result {
            Ok(r) => r,
            Err(e) => {
                // Kill the clone: namespace, topic, and VM all go. Guest
                // errors are not infrastructure failures and do not feed
                // the circuit breaker.
                let _ = self.env.net.borrow_mut().destroy_namespace(ns);
                self.env
                    .bus
                    .borrow_mut()
                    .delete_topic(&format!("params-{instance}"));
                let fault_trace = self.env.injector.borrow_mut().drain_trace();
                rec.ingest_trace(&fault_trace, cat::FAULT);
                obs.metrics().inc("core.invoke.failures", name_labels);
                rec.end(inv_span);
                return Err(e);
            }
        };

        // Copy-on-write page faults of this invocation's write set.
        let sp = rec.start_phase("page_faults", cat::MEM, Phase::Exec);
        let fault_time = trace.scope(&clock, "page_faults", Phase::Exec, || {
            let t0 = clock.now();
            vm.sync_runtime_memory();
            vm.dirty_invocation();
            clock.now() - t0
        });
        rec.end(sp);
        let _ = fault_time;

        // Attribute the guest's time: compute to exec, host I/O to others.
        // The run slice charged `exec_time + external_time` on the clock.
        let anchor = clock.now();
        trace.record(
            "exec",
            Phase::Exec,
            anchor - result.exec_time - host.external_time,
            anchor - host.external_time,
        );
        trace.record(
            "guest_io",
            Phase::Other,
            anchor - host.external_time,
            anchor,
        );
        rec.record_closed(
            "exec",
            cat::EXEC,
            Phase::Exec,
            anchor - result.exec_time - host.external_time,
            anchor - host.external_time,
        );
        rec.record_closed(
            "guest_io",
            cat::EXEC,
            Phase::Other,
            anchor - host.external_time,
            anchor,
        );

        // Guest-memory accounting after this invocation's CoW faults
        // (paper §5.4): recompute PSS and publish per-function sharing
        // gauges.
        rec.scope("pss_recompute", cat::MEM, || {
            let sharing = vm.sharing_stats();
            let labels = name_labels;
            let m = obs.metrics();
            m.gauge_set("guestmem.clone.pss_bytes", labels, vm.pss_bytes() as i64);
            m.gauge_set("guestmem.clone.rss_bytes", labels, vm.rss_bytes() as i64);
            m.gauge_set(
                "guestmem.clone.shared_pages",
                labels,
                sharing.shared_pages as i64,
            );
            m.gauge_set(
                "guestmem.clone.private_pages",
                labels,
                sharing.private_pages as i64,
            );
        });

        let entry = self
            .registry
            .get_mut(function)
            .ok_or_else(|| PlatformError::UnknownFunction(name.to_string()))?;
        entry.clones_since_snapshot += 1;
        if let Some(ws) = recorded_ws {
            entry.working_set = Some(ws);
        }
        // Success closes the breaker and resets the failure streak.
        entry.consecutive_failures = 0;
        entry.circuit_open_until = None;
        entry.restore_retries += restore_retries_now;
        entry.prefetch_degraded += u64::from(prefetch_degraded_now);
        if recovered {
            entry.recoveries += 1;
        }
        let needs_refresh = self.security.refresh_after_invocations > 0
            && entry.clones_since_snapshot >= self.security.refresh_after_invocations;

        // Surface every fault injected during this invocation in its
        // trace, so recovery is auditable alongside the latency spans.
        // The recorder gets the same events (zero-width ones as instant
        // events, per the `Recorder::ingest_trace` convention).
        let fault_trace = self.env.injector.borrow_mut().drain_trace();
        trace.extend(&fault_trace);
        rec.ingest_trace(&fault_trace, cat::FAULT);

        let invocation = Invocation {
            value: result.value,
            breakdown: trace.breakdown(),
            trace,
            start: StartKind::SnapshotRestore,
            stats: result.stats,
            printed: host.printed,
            response: host.responses.into_iter().next_back(),
        };
        let clone = ResidentClone { vm, ns, instance };
        rec.end(inv_span);
        obs.metrics().observe(
            "core.invoke.latency_ns",
            name_labels,
            (clock.now() - t_start).as_nanos(),
        );
        // Guest-JIT health for this invocation: inline-cache hit/miss
        // traffic, deopts, and code-cache evictions. Restore-side deopt
        // storms (snapshot taken before IC warm-up, or shape drift in
        // live traffic) surface here.
        {
            let m = obs.metrics();
            let stats = &invocation.stats;
            m.add("vm.ic.hits", name_labels, stats.ic_hits);
            m.add("vm.ic.misses", name_labels, stats.ic_misses);
            m.add("vm.jit.deopts", name_labels, stats.deopts);
            m.add("vm.code_cache.evictions", name_labels, stats.code_evictions);
            if let Some(rt) = clone.vm.runtime() {
                m.gauge_set(
                    "vm.code_cache.used_bytes",
                    name_labels,
                    rt.vm().code_cache_used_bytes() as i64,
                );
                let ic = rt.vm().ic_summary();
                m.gauge_set("vm.ic.sites", name_labels, ic.sites as i64);
                m.gauge_set("vm.ic.megamorphic_sites", name_labels, ic.mega as i64);
            }
        }

        // Security maintenance off the invocation path (paper §6).
        if needs_refresh {
            self.refresh_snapshot(function)?;
        }

        Ok((invocation, clone))
    }

    /// Invokes a function and keeps the clone resident (for memory
    /// experiments). Release it with [`FireworksPlatform::release_clone`].
    pub fn invoke_resident(
        &mut self,
        function: FunctionId,
        args: &Value,
    ) -> Result<(Invocation, ResidentClone), PlatformError> {
        self.invoke_internal(function, args, None)
    }

    /// Tears down a resident clone: namespace, parameter topic, and guest
    /// memory.
    pub fn release_clone(&mut self, clone: ResidentClone) {
        let _ = self.env.net.borrow_mut().destroy_namespace(clone.ns);
        self.env
            .bus
            .borrow_mut()
            .delete_topic(&format!("params-{}", clone.instance));
        drop(clone.vm);
    }

    /// Security audit for an installed function (paper §6).
    pub fn audit(&self, function: FunctionId) -> Option<SecurityAudit> {
        let entry = self.registry.get(function)?;
        Some(SecurityAudit {
            function: function.name().to_string(),
            clones_from_current_snapshot: entry.clones_since_snapshot,
            shared_aslr_layout: entry.clones_since_snapshot > 0,
            rng_reseeded_on_restore: self.security.reseed_rng_on_restore,
            refreshes: entry.refreshes,
            refresh_time: entry.refresh_time,
        })
    }

    /// The install report of a function.
    pub fn install_report(&self, function: FunctionId) -> Option<&InstallReport> {
        self.registry.get(function).map(|e| &e.install_report)
    }

    /// The function's cached snapshot, if the LRU still holds it. Touches
    /// the LRU like any other access. Handy for inspecting (or, in
    /// robustness tests, damaging) the exact pages later restores read.
    pub fn cached_snapshot(&mut self, function: FunctionId) -> Option<Rc<VmFullSnapshot>> {
        self.cache.get(function)
    }

    /// Reliability counters and breaker state of an installed function.
    pub fn health(&self, function: FunctionId) -> Option<FunctionHealth> {
        let entry = self.registry.get(function)?;
        Some(FunctionHealth {
            consecutive_failures: entry.consecutive_failures,
            circuit_open_until: entry.circuit_open_until,
            recoveries: entry.recoveries,
            quarantines: entry.quarantines,
            rebuilds: entry.refreshes,
            restore_retries: entry.restore_retries,
            prefetch_degraded: entry.prefetch_degraded,
        })
    }
}

impl Platform for FireworksPlatform {
    fn name(&self) -> &'static str {
        "fireworks"
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Vm
    }

    fn install(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError> {
        let clock = self.env.clock.clone();
        let t0 = clock.now();
        let annotated = annotate(&spec.source, &AnnotationConfig::default())?;
        let profile = RuntimeProfile::for_kind(spec.runtime);
        let snapshot = self.build_snapshot(spec, &annotated, &profile)?;
        let report = InstallReport {
            install_time: clock.now() - t0,
            snapshot_pages: snapshot.pages(),
            snapshot_bytes: snapshot.file_bytes(),
            annotated_functions: annotated.annotated_functions,
        };
        let function = fid(&spec.name);
        self.cache_insert(function, snapshot);
        self.registry.insert(
            function,
            FunctionEntry {
                spec: spec.clone(),
                annotated,
                profile,
                install_report: report.clone(),
                clones_since_snapshot: 0,
                refreshes: 0,
                refresh_time: Nanos::ZERO,
                working_set: None,
                consecutive_failures: 0,
                circuit_open_until: None,
                recoveries: 0,
                quarantines: 0,
                restore_retries: 0,
                prefetch_degraded: 0,
            },
        );
        Ok(report)
    }

    fn invoke(&mut self, req: &InvokeRequest) -> Result<Invocation, PlatformError> {
        // A blocking invoke is the degenerate one-event schedule: service
        // and completion at the same instant.
        let (invocation, clone) = self.begin_invoke(req)?;
        self.finish_invoke(clone);
        Ok(invocation)
    }

    fn evict(&mut self, _function: FunctionId) {
        // Fireworks keeps no warm sandboxes; nothing to evict.
    }

    fn supports_chains(&self) -> bool {
        true
    }

    fn invoke_chain(
        &mut self,
        stages: &[FunctionId],
        req: &InvokeRequest,
    ) -> Result<Vec<Invocation>, PlatformError> {
        crate::api::run_chain(self, stages, req)
    }
}

impl ConcurrentPlatform for FireworksPlatform {
    type InFlight = ResidentClone;

    fn begin_invoke(
        &mut self,
        req: &InvokeRequest,
    ) -> Result<(Invocation, ResidentClone), PlatformError> {
        // Fireworks has no cold/warm distinction (§5.1): every invocation
        // is a snapshot restore regardless of `req.mode`, and the clone
        // stays resident — its guest memory charged against the host —
        // until `finish_invoke`.
        self.invoke_internal(req.function, &req.args, req.trace)
    }

    fn finish_invoke(&mut self, clone: ResidentClone) {
        self.release_clone(clone);
    }

    fn residency(&self, function: FunctionId) -> SnapshotResidency {
        // The locality signal a cluster router steers by. Full: this
        // host's LRU holds the function's post-JIT snapshot. Partial: a
        // mesh peer published the manifest and this host's chunk store
        // already holds all but `missing_bytes` of it (shared runtime/OS
        // chunks), so a delta fetch beats a rebuild. `contains` — not
        // `get` — so router probes never perturb the LRU.
        if self.cache.contains(function) {
            return SnapshotResidency::Full;
        }
        if let (Some((mesh, _)), Some(store)) = (&self.mesh, &self.chunk_store) {
            let mesh = mesh.borrow();
            if let Some(manifest) = mesh.manifest_for(function) {
                return SnapshotResidency::Partial {
                    missing_bytes: store.borrow().missing_bytes(manifest),
                };
            }
        }
        SnapshotResidency::Absent
    }

    fn hot_functions(&self) -> Vec<FunctionId> {
        self.cache.names()
    }

    fn prewarm(&mut self, function: FunctionId) -> bool {
        // Already hot, or provisioned by delta-fetching the missing
        // chunks from a mesh donor. Prewarming is opportunistic: with no
        // donor (or a donor crash) it reports `false` and the next
        // invocation pays the ordinary rebuild.
        if self.cache.contains(function) {
            return true;
        }
        if !self.registry.contains(function) {
            return false;
        }
        self.fetch_snapshot_delta(function).is_some()
    }

    fn retire(&mut self, function: FunctionId) -> bool {
        let was_resident = self.cache.contains(function);
        self.uncache(function);
        was_resident
    }

    fn store_audit(&self) -> Option<StoreAudit> {
        let store = self.chunk_store.as_ref()?;
        Some(StoreAudit {
            chunk_refs: store.borrow().chunk_refcounts(),
            manifests: self
                .cache
                .manifests()
                .into_iter()
                .map(|(id, m)| (id.name().to_string(), m.clone()))
                .collect(),
        })
    }

    fn attach_mesh(&mut self, mesh: SharedChunkMesh, host_id: HostId) {
        // Flat-store platforms have nothing to publish or donate; they
        // stay off the mesh and report Full/Absent residency only.
        if let Some(store) = &self.chunk_store {
            mesh.borrow_mut()
                .register(host_id, store.clone(), self.env.injector.clone());
            self.mesh = Some((mesh, host_id));
        }
    }

    fn register(&mut self, spec: &FunctionSpec) -> Result<(), PlatformError> {
        // Registration without the install-time build: the function is
        // invocable, and its first invocation pays a delta fetch (if a
        // mesh peer holds the snapshot) or a rebuild from source. This is
        // how a cluster installs a function on its home host only.
        let annotated = annotate(&spec.source, &AnnotationConfig::default())?;
        let profile = RuntimeProfile::for_kind(spec.runtime);
        let annotated_functions = annotated.annotated_functions;
        self.registry.insert(
            fid(&spec.name),
            FunctionEntry {
                spec: spec.clone(),
                annotated,
                profile,
                install_report: InstallReport {
                    install_time: Nanos::ZERO,
                    snapshot_pages: 0,
                    snapshot_bytes: 0,
                    annotated_functions,
                },
                clones_since_snapshot: 0,
                refreshes: 0,
                refresh_time: Nanos::ZERO,
                working_set: None,
                consecutive_failures: 0,
                circuit_open_until: None,
                recoveries: 0,
                quarantines: 0,
                restore_retries: 0,
                prefetch_degraded: 0,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_runtime::RuntimeKind;

    const FACT_SRC: &str = "
        fn factorize(n) {
            let factors = [];
            let d = 2;
            let m = n;
            while (d * d <= m) {
                while (m % d == 0) { push(factors, d); m = m / d; }
                d = d + 1;
            }
            if (m > 1) { push(factors, m); }
            return factors;
        }
        fn main(params) { return len(factorize(params[\"n\"])); }";

    fn spec(name: &str) -> FunctionSpec {
        FunctionSpec::new(
            name,
            FACT_SRC,
            RuntimeKind::NodeLike,
            Value::map([("n".to_string(), Value::Int(1_000_003))]),
        )
    }

    fn platform() -> FireworksPlatform {
        FireworksPlatform::new(PlatformEnv::default_env())
    }

    fn args(n: i64) -> Value {
        Value::map([("n".to_string(), Value::Int(n))])
    }

    fn req(name: &str, n: i64) -> InvokeRequest {
        InvokeRequest::new(fid(name), args(n))
    }

    #[test]
    fn install_creates_post_jit_snapshot() {
        let mut p = platform();
        let report = p.install(&spec("fact")).expect("installs");
        assert!(report.snapshot_pages > 10_000, "full VM image captured");
        assert!(report.annotated_functions >= 2);
        // §5.1: install takes seconds (boot + runtime + JIT + write).
        assert!(report.install_time.as_secs_f64() > 1.0);
    }

    #[test]
    fn invoke_runs_user_function_with_real_arguments() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        // 360 = 2^3 * 3^2 * 5 → 6 prime factors.
        let inv = p.invoke(&req("fact", 360)).expect("invokes");
        assert_eq!(inv.value, Value::Int(6));
        assert_eq!(inv.start, StartKind::SnapshotRestore);
    }

    #[test]
    fn startup_is_orders_of_magnitude_below_install() {
        let mut p = platform();
        let report = p.install(&spec("fact")).expect("installs");
        let inv = p.invoke(&req("fact", 12345)).expect("invokes");
        assert!(
            inv.breakdown.startup.as_nanos() * 20 < report.install_time.as_nanos(),
            "startup {} vs install {}",
            inv.breakdown.startup,
            report.install_time
        );
        // Fireworks startup target: tens of ms (§5.2).
        assert!(inv.breakdown.startup < Nanos::from_millis(80));
    }

    #[test]
    fn invocation_executes_jitted_without_compiles() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        let inv = p.invoke(&req("fact", 1_000_003)).expect("invokes");
        assert_eq!(inv.stats.compiles, 0, "post-JIT: no compile at invoke");
        assert!(
            inv.stats.jit_ops > inv.stats.interp_ops,
            "runs in the JIT tier: {:?}",
            inv.stats
        );
    }

    #[test]
    fn concurrent_clones_share_memory() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        let (_, a) = p.invoke_resident(fid("fact"), &args(99)).expect("a");
        let (_, b) = p.invoke_resident(fid("fact"), &args(100)).expect("b");
        // Each clone's private write set (exec state + dirtied heap) is a
        // small fraction of the image, so PSS sits well below RSS.
        assert!(
            (a.pss_bytes() as f64) < 0.65 * a.rss_bytes() as f64,
            "pss {} vs rss {}",
            a.pss_bytes(),
            a.rss_bytes()
        );
        assert_ne!(a.instance, b.instance);
        p.release_clone(a);
        p.release_clone(b);
    }

    #[test]
    fn clones_get_distinct_arguments_despite_identical_memory() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        let i1 = p.invoke(&req("fact", 8)).expect("1");
        let i2 = p.invoke(&req("fact", 36)).expect("2");
        assert_eq!(i1.value, Value::Int(3)); // 2*2*2
        assert_eq!(i2.value, Value::Int(4)); // 2*2*3*3
    }

    #[test]
    fn unknown_function_errors() {
        let mut p = platform();
        assert!(matches!(
            p.invoke(&req("ghost", 1)),
            Err(PlatformError::UnknownFunction(_))
        ));
    }

    #[test]
    fn cache_eviction_triggers_rebuild_on_invoke() {
        // Budget fits roughly one snapshot: installing two functions
        // evicts the first; invoking it must transparently rebuild.
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder().cache_budget(200 << 20).build(),
        );
        p.install(&spec("f1")).expect("installs");
        p.install(&spec("f2")).expect("installs");
        assert!(p.cache_evictions() > 0, "budget forced an eviction");
        assert!(
            p.residency(fid("f2")).is_full() && !p.residency(fid("f1")).is_full(),
            "the locality signal tracks the LRU"
        );
        let inv = p.invoke(&req("f1", 10)).expect("rebuilds");
        assert_eq!(inv.value, Value::Int(2));
        assert!(
            inv.trace.total_for("snapshot_rebuild") > Nanos::ZERO,
            "rebuild must be visible in the trace"
        );
        assert!(
            p.residency(fid("f1")).is_full(),
            "the rebuild re-populated the cache"
        );
    }

    #[test]
    fn security_refresh_regenerates_snapshot() {
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder()
                .security(SecurityPolicy {
                    reseed_rng_on_restore: true,
                    refresh_after_invocations: 2,
                })
                .build(),
        );
        p.install(&spec("fact")).expect("installs");
        for _ in 0..2 {
            p.invoke(&req("fact", 10)).expect("ok");
        }
        let audit = p.audit(fid("fact")).expect("installed");
        assert_eq!(audit.refreshes, 1, "refresh after 2 invocations");
        assert_eq!(audit.clones_from_current_snapshot, 0);
        assert!(audit.refresh_time > Nanos::ZERO);
    }

    #[test]
    fn audit_reports_shared_layout_without_refresh() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        for _ in 0..3 {
            p.invoke(&req("fact", 10)).expect("ok");
        }
        let audit = p.audit(fid("fact")).expect("installed");
        assert_eq!(audit.clones_from_current_snapshot, 3);
        assert!(audit.has_findings(), "shared ASLR across 3 clones");
    }

    #[test]
    fn failed_invocations_release_namespace_and_topic() {
        let mut p = platform();
        p.install(&FunctionSpec::new(
            "crashy",
            "fn main(params) { return 1 / params[\"zero\"]; }",
            RuntimeKind::NodeLike,
            Value::map([("zero".to_string(), Value::Int(1))]),
        ))
        .expect("installs");
        let ns_before = p.env().net.borrow().namespace_count();
        for _ in 0..3 {
            let err = p.invoke(&InvokeRequest::new(
                fid("crashy"),
                Value::map([("zero".to_string(), Value::Int(0))]),
            ));
            assert!(err.is_err());
        }
        assert_eq!(
            p.env().net.borrow().namespace_count(),
            ns_before,
            "crashed invocations must not leak namespaces"
        );
        // Successful invocations clean up their parameter topics too.
        p.invoke(&InvokeRequest::new(
            fid("crashy"),
            Value::map([("zero".to_string(), Value::Int(2))]),
        ))
        .expect("runs");
        assert!(
            !p.env().bus.borrow().has_topic("params-vm-1"),
            "parameter topics must be deleted after teardown"
        );
    }

    #[test]
    fn cold_storage_paging_faults_and_reap_prefetch_recovers() {
        let req10 = req("fact", 10);

        // Warm page cache: no paging span at all.
        let mut warm = platform();
        warm.install(&spec("fact")).expect("installs");
        let warm_inv = warm.invoke(&req10).expect("ok");
        assert_eq!(warm_inv.trace.total_for("paging"), Nanos::ZERO);

        // Cold storage without REAP: every invocation faults the whole
        // working set from storage.
        let mut cold = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder()
                .paging(PagingPolicy::ColdStorage { reap: false })
                .build(),
        );
        cold.install(&spec("fact")).expect("installs");
        let c1 = cold.invoke(&req10).expect("ok");
        let c2 = cold.invoke(&req10).expect("ok");
        let cold_paging = c1.trace.total_for("paging");
        assert!(
            cold_paging > Nanos::from_millis(5),
            "major faults hurt: {cold_paging}"
        );
        assert_eq!(c2.trace.total_for("paging"), cold_paging, "no learning");

        // Cold storage with REAP: first invocation records, later ones
        // prefetch in one sequential read — much cheaper.
        let mut reap = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder()
                .paging(PagingPolicy::ColdStorage { reap: true })
                .build(),
        );
        reap.install(&spec("fact")).expect("installs");
        let r1 = reap.invoke(&req10).expect("ok");
        let r2 = reap.invoke(&req10).expect("ok");
        assert_eq!(
            r1.trace.total_for("paging"),
            cold_paging,
            "recording pass pays the same faults"
        );
        let prefetch = r2.trace.total_for("paging");
        assert!(
            prefetch.as_nanos() * 4 < cold_paging.as_nanos(),
            "prefetch {prefetch} vs faulting {cold_paging}"
        );
        // Results are identical regardless of paging policy.
        assert_eq!(warm_inv.value, r2.value);
    }

    #[test]
    fn transient_restore_fault_recovers_with_backoff() {
        use fireworks_sim::fault::{FaultPlan, FaultSite};
        let plan = FaultPlan::new(7).nth(FaultSite::SnapshotRead, 1);
        let mut p = FireworksPlatform::new(PlatformEnv::with_fault_plan(plan));
        p.install(&spec("fact")).expect("installs");
        let inv = p.invoke(&req("fact", 360)).expect("recovers");
        assert_eq!(inv.value, Value::Int(6), "result unaffected by the fault");
        assert!(
            inv.trace.total_for("recovery_backoff") > Nanos::ZERO,
            "retry backoff must be visible in the trace"
        );
        assert!(
            inv.trace.total_for("fault:snapshot_read") == Nanos::ZERO
                && inv
                    .trace
                    .spans()
                    .iter()
                    .any(|s| s.label == "fault:snapshot_read"),
            "the injected fault appears as a zero-width span"
        );
        let health = p.health(fid("fact")).expect("installed");
        assert_eq!(health.recoveries, 1);
        assert_eq!(health.consecutive_failures, 0);
        assert_eq!(health.quarantines, 0);
    }

    #[test]
    fn observability_plane_sees_retries_spans_and_metrics() {
        use fireworks_obs::Event;
        use fireworks_sim::fault::{FaultPlan, FaultSite};
        let plan = FaultPlan::new(7).nth(FaultSite::SnapshotRead, 1);
        let mut p = FireworksPlatform::new(PlatformEnv::with_fault_plan(plan));
        p.install(&spec("fact")).expect("installs");
        p.invoke(&req("fact", 360)).expect("recovers");

        let health = p.health(fid("fact")).expect("installed");
        assert_eq!(health.restore_retries, 1, "one transient retry");
        assert_eq!(health.prefetch_degraded, 0);

        let snap = p.env().obs.metrics().snapshot();
        let fact = &[("function", "fact")];
        assert_eq!(snap.counter("core.recovery.restore_retries", fact), 1);
        assert_eq!(snap.counter("core.invoke.attempts", fact), 1);
        assert_eq!(snap.counter("core.invoke.failures", fact), 0);
        assert_eq!(snap.counter("core.cache.hits", &[]), 1);
        assert_eq!(
            snap.counter("microvm.restore.failures", &[("kind", "read")]),
            1
        );
        assert!(snap.gauge("guestmem.clone.pss_bytes", fact).unwrap_or(0) > 0);
        assert!(
            snap.histogram("core.invoke.latency_ns", fact).is_some(),
            "invoke latency lands in the default-bounds histogram"
        );

        let events = p.env().obs.recorder().events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Span(s) if s.name == "invoke" && s.end.is_some())),
            "root invoke span is recorded and closed"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Instant(i) if i.name == "fault:snapshot_read")),
            "the injected fault surfaces as an instant event"
        );
        assert!(
            events.iter().any(
                |e| matches!(e, Event::Span(s) if s.name == "snapshot_restore" && s.parent.is_some())
            ),
            "the manager's restore span nests under the invocation"
        );
    }

    #[test]
    fn guest_jit_health_is_exported_through_obs() {
        // `main(params)` reads `params["n"]` — a string-literal index,
        // i.e. an inline-cache property site. The platform must export
        // per-invocation IC and code-cache telemetry under `vm.*`.
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        let inv = p.invoke(&req("fact", 360)).expect("runs");
        assert!(
            inv.stats.ic_hits + inv.stats.ic_misses > 0,
            "property site must route through the IC: {:?}",
            inv.stats
        );

        let snap = p.env().obs.metrics().snapshot();
        let fact = &[("function", "fact")];
        assert_eq!(
            snap.counter("vm.ic.hits", fact) + snap.counter("vm.ic.misses", fact),
            inv.stats.ic_hits + inv.stats.ic_misses
        );
        assert_eq!(snap.counter("vm.jit.deopts", fact), inv.stats.deopts);
        assert_eq!(
            snap.counter("vm.code_cache.evictions", fact),
            inv.stats.code_evictions
        );
        assert!(
            snap.gauge("vm.code_cache.used_bytes", fact).unwrap_or(-1) > 0,
            "post-JIT snapshot clones carry resident compiled code"
        );
        assert!(snap.gauge("vm.ic.sites", fact).unwrap_or(0) >= 1);
    }

    #[test]
    fn platform_jit_config_constrains_guest_code_cache() {
        // A byte-starved platform-level code-cache budget suppresses
        // compilation in every launched runtime: installs still work,
        // but the snapshot carries no JIT code.
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder()
                .jit(fireworks_lang::JitConfig::default().with_code_cache_capacity_bytes(8))
                .build(),
        );
        p.install(&spec("fact")).expect("installs");
        let inv = p.invoke(&req("fact", 360)).expect("runs");
        assert_eq!(inv.stats.compiles, 0, "{:?}", inv.stats);
        let snap = p.env().obs.metrics().snapshot();
        assert_eq!(
            snap.gauge("vm.code_cache.used_bytes", &[("function", "fact")]),
            Some(0)
        );
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_rebuilt() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        // Damage a page of the cached snapshot behind the platform's back
        // (disk corruption, not an armed injector).
        p.cache
            .get(fid("fact"))
            .expect("cached")
            .mem()
            .corrupt_page(123);
        let inv = p.invoke(&req("fact", 360)).expect("self-heals");
        assert_eq!(inv.value, Value::Int(6));
        assert!(
            inv.trace.total_for("snapshot_rebuild") > Nanos::ZERO,
            "recovery rebuilds the snapshot from source"
        );
        let health = p.health(fid("fact")).expect("installed");
        assert_eq!(health.quarantines, 1);
        assert_eq!(health.rebuilds, 1);
        // The rebuilt snapshot serves the next invocation cleanly.
        let inv2 = p.invoke(&req("fact", 360)).expect("restores");
        assert_eq!(inv2.start, StartKind::SnapshotRestore);
        assert_eq!(inv2.trace.total_for("snapshot_rebuild"), Nanos::ZERO);
        assert_eq!(inv2.trace.total_for("recovery_backoff"), Nanos::ZERO);
    }

    #[test]
    fn repeated_infra_failures_open_the_circuit_breaker() {
        use fireworks_sim::fault::{FaultPlan, FaultSite};
        // Every snapshot read fails: each invocation exhausts its retries.
        let plan = FaultPlan::new(3).probability(FaultSite::SnapshotRead, 1.0);
        let mut p = FireworksPlatform::new(PlatformEnv::with_fault_plan(plan));
        p.install(&spec("fact")).expect("installs");
        let ns_before = p.env().net.borrow().namespace_count();
        for i in 0..3 {
            let err = p.invoke(&req("fact", 10));
            assert!(matches!(err, Err(PlatformError::Vm(_))), "attempt {i}");
        }
        assert_eq!(
            p.env().net.borrow().namespace_count(),
            ns_before,
            "failed restores must not leak namespaces"
        );
        // Threshold reached: the breaker fails fast without retrying.
        let t0 = p.env().clock.now();
        let err = p.invoke(&req("fact", 10));
        assert!(matches!(err, Err(PlatformError::CircuitOpen { .. })));
        assert_eq!(p.env().clock.now(), t0, "fail-fast charges nothing");
        // After the cooldown one half-open attempt goes through (and, with
        // the fault still armed, re-opens the breaker).
        p.env().clock.advance(Nanos::from_secs(11));
        let err = p.invoke(&req("fact", 10));
        assert!(matches!(err, Err(PlatformError::Vm(_))));
        let err = p.invoke(&req("fact", 10));
        assert!(matches!(err, Err(PlatformError::CircuitOpen { .. })));
        let health = p.health(fid("fact")).expect("installed");
        assert!(health.circuit_open_until.is_some());
        assert_eq!(health.consecutive_failures, 4);
    }

    #[test]
    fn guest_errors_do_not_trip_the_breaker() {
        let mut p = platform();
        p.install(&FunctionSpec::new(
            "crashy",
            "fn main(params) { return 1 / params[\"zero\"]; }",
            RuntimeKind::NodeLike,
            Value::map([("zero".to_string(), Value::Int(1))]),
        ))
        .expect("installs");
        for _ in 0..5 {
            let err = p.invoke(&InvokeRequest::new(
                fid("crashy"),
                Value::map([("zero".to_string(), Value::Int(0))]),
            ));
            assert!(matches!(err, Err(PlatformError::Lang(_))));
        }
        let health = p.health(fid("crashy")).expect("installed");
        assert_eq!(
            health.consecutive_failures, 0,
            "guest bugs are not infrastructure failures"
        );
        assert!(health.circuit_open_until.is_none());
    }

    #[test]
    fn chains_are_supported() {
        let mut p = platform();
        p.install(&spec("fact")).expect("installs");
        const WRAP_SRC: &str = "
            fn main(params) { return { n: params + 1 }; }";
        // A tiny adapter stage: takes the previous count, passes n+1 on.
        p.install(&FunctionSpec::new(
            "wrap",
            WRAP_SRC,
            RuntimeKind::NodeLike,
            Value::Int(1),
        ))
        .expect("installs");
        assert!(p.supports_chains());
        let results = p
            .invoke_chain(
                &[fid("fact"), fid("wrap")],
                &InvokeRequest::new(fid("fact"), args(8)),
            )
            .expect("chain runs");
        assert_eq!(results.len(), 2);
        // fact(8) = 3 primes → wrap makes { n: 4 }.
        let Value::Map(m) = &results[1].value else {
            panic!("map")
        };
        assert_eq!(m.borrow()["n"], Value::Int(4));
    }
}
