//! Construction-time platform configuration (API v2).
//!
//! Platform-wide policy — recovery, paging, security, snapshot-cache
//! budget, warm-pool keep-alive — is gathered into one
//! [`PlatformConfig`] value consumed when a platform is built, replacing
//! the v1 post-hoc mutators (`set_recovery_policy` and friends). A
//! cluster can therefore stamp out N identically-configured hosts from
//! one config value, and a platform's policy is immutable once it is
//! serving traffic.

use fireworks_lang::JitConfig;
use fireworks_sim::Nanos;

use crate::audit::SecurityPolicy;

/// Where snapshot pages live when an invocation arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingPolicy {
    /// Snapshot pages are resident in the host page cache (the paper's
    /// single-host evaluation): restores fault cheaply via CoW.
    WarmPageCache,
    /// Snapshot pages live in cold storage (remote or evicted): first
    /// touches are major faults unless prefetched. The REAP extension
    /// records each function's working set on its first cold invocation
    /// and prefetches it afterwards.
    ColdStorage {
        /// Whether REAP recording/prefetching is enabled.
        reap: bool,
    },
}

/// How the platform reacts to infrastructure failures (injected or
/// otherwise) on the snapshot-restore path.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Boot/restore attempts per invocation, first try included.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `backoff_base * 2^(k-1)`,
    /// charged in virtual time and traced as a `recovery_backoff` span.
    pub backoff_base: Nanos,
    /// Consecutive infrastructure failures that open a function's
    /// circuit breaker.
    pub circuit_threshold: u32,
    /// While the breaker is open, invocations fail fast with
    /// [`crate::PlatformError::CircuitOpen`] for this long; the first
    /// attempt after the cooldown is let through (half-open).
    pub circuit_cooldown: Nanos,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_base: Nanos::from_millis(2),
            circuit_threshold: 3,
            circuit_cooldown: Nanos::from_secs(10),
        }
    }
}

impl RecoveryPolicy {
    /// Backoff charged before retry number `attempt` (1-based).
    pub(crate) fn backoff(&self, attempt: u32) -> Nanos {
        self.backoff_base * (1u64 << u64::from(attempt.saturating_sub(1).min(16)))
    }
}

/// How a host stores the post-JIT snapshots it caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotStorePolicy {
    /// Each cached snapshot owns its bytes (the original single-host
    /// layout): the cache budget is charged per snapshot file, and a
    /// remote miss rebuilds from source.
    Flat,
    /// Snapshots are chunked content-addressed into a per-host
    /// [`fireworks_store::ChunkStore`]: identical chunks across
    /// functions are stored once, the cache budget is charged *unique*
    /// chunk bytes, and (with `delta_fetch`) a host missing a snapshot
    /// fetches only the chunks it lacks from a peer instead of
    /// rebuilding from source.
    Dedup {
        /// Chunk granularity in pages (fixed-size runs of the
        /// snapshot's frame list).
        chunk_pages: usize,
        /// Whether remote misses are served by peer-to-peer chunk
        /// transfer when a peer holds the snapshot.
        delta_fetch: bool,
    },
}

impl SnapshotStorePolicy {
    /// Default chunk granularity: 64 pages (256 KiB) balances dedup
    /// resolution against manifest size.
    pub const DEFAULT_CHUNK_PAGES: usize = 64;

    /// The dedup policy with default granularity and delta fetch on.
    pub fn dedup() -> Self {
        SnapshotStorePolicy::Dedup {
            chunk_pages: Self::DEFAULT_CHUNK_PAGES,
            delta_fetch: true,
        }
    }
}

/// Construction-time configuration shared by all four platforms.
///
/// Every field has a sensible default; build one with
/// [`PlatformConfig::builder`] (or [`PlatformConfig::default`]) and pass
/// it to the platform's `with_config` constructor. Fields a platform has
/// no mechanism for are ignored there — e.g. the baselines have no
/// post-JIT snapshot cache, and Fireworks has no idle warm pool, so
/// `keep_alive` only matters to the baselines.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Byte budget of the post-JIT snapshot cache (Fireworks). LRU
    /// eviction; a miss rebuilds the snapshot from source. Default:
    /// unlimited.
    pub cache_budget_bytes: u64,
    /// Restore-failure recovery policy (Fireworks).
    pub recovery: RecoveryPolicy,
    /// Snapshot paging policy (Fireworks).
    pub paging: PagingPolicy,
    /// Restore-time security policy (Fireworks).
    pub security: SecurityPolicy,
    /// How long an idle warm sandbox is kept before reaping; `None`
    /// keeps it forever. Applies to the baselines' warm pools.
    pub keep_alive: Option<Nanos>,
    /// Snapshot storage layout (Fireworks): flat per-snapshot files or
    /// a content-addressed chunk store with optional peer delta fetch.
    pub snapshot_store: SnapshotStorePolicy,
    /// Probability that one document-store request finds the store
    /// transiently unavailable ([`fireworks_sim::fault::FaultSite::StoreUnavailable`]),
    /// armed on the platform's fault injector at construction. Replaces
    /// the v1 pattern of arming outage rules post-hoc on `PlatformEnv`.
    pub store_outage: f64,
    /// Probability that one network transmission attempt is lost
    /// ([`fireworks_sim::fault::FaultSite::NetLoss`]), armed on the
    /// platform's fault injector at construction.
    pub packet_loss: f64,
    /// Guest JIT shape used for every runtime the platform launches:
    /// tier-up policy override, code-cache byte budget, inline-cache
    /// polymorphism limit. The default leaves the policy to each
    /// runtime profile and the budget effectively uncapped.
    pub jit: JitConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cache_budget_bytes: u64::MAX,
            recovery: RecoveryPolicy::default(),
            paging: PagingPolicy::WarmPageCache,
            security: SecurityPolicy::default(),
            keep_alive: None,
            snapshot_store: SnapshotStorePolicy::Flat,
            store_outage: 0.0,
            packet_loss: 0.0,
            jit: JitConfig::default(),
        }
    }
}

impl PlatformConfig {
    /// Starts a builder with the defaults.
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder {
            config: PlatformConfig::default(),
        }
    }
}

/// Builder for [`PlatformConfig`].
#[derive(Debug, Clone)]
pub struct PlatformConfigBuilder {
    config: PlatformConfig,
}

impl PlatformConfigBuilder {
    /// Sets the snapshot-cache byte budget.
    pub fn cache_budget(mut self, bytes: u64) -> Self {
        self.config.cache_budget_bytes = bytes;
        self
    }

    /// Sets the recovery policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Sets the paging policy.
    pub fn paging(mut self, paging: PagingPolicy) -> Self {
        self.config.paging = paging;
        self
    }

    /// Sets the security policy.
    pub fn security(mut self, security: SecurityPolicy) -> Self {
        self.config.security = security;
        self
    }

    /// Sets the warm-pool keep-alive.
    pub fn keep_alive(mut self, keep_alive: Option<Nanos>) -> Self {
        self.config.keep_alive = keep_alive;
        self
    }

    /// Sets the snapshot storage layout.
    pub fn snapshot_store(mut self, policy: SnapshotStorePolicy) -> Self {
        self.config.snapshot_store = policy;
        self
    }

    /// Sets the probability of a transient document-store outage per
    /// request (0.0 disables).
    ///
    /// # Panics
    ///
    /// Panics if the probability is not within `0.0..=1.0`.
    pub fn store_outage(mut self, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "store_outage must be a probability"
        );
        self.config.store_outage = probability;
        self
    }

    /// Sets the probability of losing one network transmission attempt
    /// (0.0 disables).
    ///
    /// # Panics
    ///
    /// Panics if the probability is not within `0.0..=1.0`.
    pub fn packet_loss(mut self, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "packet_loss must be a probability"
        );
        self.config.packet_loss = probability;
        self
    }

    /// Sets the guest JIT shape (policy override, code-cache budget,
    /// inline-cache limits) for every runtime the platform launches.
    pub fn jit(mut self, jit: JitConfig) -> Self {
        self.config.jit = jit;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> PlatformConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_field() {
        let recovery = RecoveryPolicy {
            max_attempts: 7,
            backoff_base: Nanos::from_millis(1),
            circuit_threshold: 9,
            circuit_cooldown: Nanos::from_secs(3),
        };
        let security = SecurityPolicy {
            reseed_rng_on_restore: false,
            refresh_after_invocations: 11,
        };
        let cfg = PlatformConfig::builder()
            .cache_budget(123)
            .recovery(recovery.clone())
            .paging(PagingPolicy::ColdStorage { reap: true })
            .security(security)
            .keep_alive(Some(Nanos::from_secs(60)))
            .snapshot_store(SnapshotStorePolicy::Dedup {
                chunk_pages: 32,
                delta_fetch: false,
            })
            .store_outage(0.25)
            .packet_loss(0.05)
            .jit(
                JitConfig::default()
                    .with_policy(Some(fireworks_lang::JitPolicy::AnnotatedEager))
                    .with_code_cache_capacity_bytes(1 << 20)
                    .with_ic_poly_limit(2),
            )
            .build();
        assert_eq!(cfg.cache_budget_bytes, 123);
        assert_eq!(cfg.recovery.max_attempts, 7);
        assert_eq!(cfg.recovery.circuit_threshold, 9);
        assert_eq!(cfg.paging, PagingPolicy::ColdStorage { reap: true });
        assert!(!cfg.security.reseed_rng_on_restore);
        assert_eq!(cfg.security.refresh_after_invocations, 11);
        assert_eq!(cfg.keep_alive, Some(Nanos::from_secs(60)));
        assert_eq!(
            cfg.snapshot_store,
            SnapshotStorePolicy::Dedup {
                chunk_pages: 32,
                delta_fetch: false
            }
        );
        assert_eq!(cfg.store_outage, 0.25);
        assert_eq!(cfg.packet_loss, 0.05);
        assert_eq!(
            cfg.jit.policy,
            Some(fireworks_lang::JitPolicy::AnnotatedEager)
        );
        assert_eq!(cfg.jit.code_cache_capacity_bytes, 1 << 20);
        assert_eq!(cfg.jit.ic_poly_limit, 2);
    }

    #[test]
    fn defaults_are_unlimited_cache_and_no_keep_alive() {
        let cfg = PlatformConfig::default();
        assert_eq!(cfg.cache_budget_bytes, u64::MAX);
        assert!(cfg.keep_alive.is_none());
        assert_eq!(cfg.paging, PagingPolicy::WarmPageCache);
        assert_eq!(cfg.snapshot_store, SnapshotStorePolicy::Flat);
        assert_eq!(cfg.store_outage, 0.0);
        assert_eq!(cfg.packet_loss, 0.0);
        assert_eq!(cfg.jit.policy, None, "JIT policy defers to the profile");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_loss_probability_is_rejected() {
        let _ = PlatformConfig::builder().packet_loss(1.5);
    }

    #[test]
    fn dedup_shorthand_enables_delta_fetch() {
        let SnapshotStorePolicy::Dedup {
            chunk_pages,
            delta_fetch,
        } = SnapshotStorePolicy::dedup()
        else {
            panic!("dedup() must build the dedup variant");
        };
        assert_eq!(chunk_pages, SnapshotStorePolicy::DEFAULT_CHUNK_PAGES);
        assert!(delta_fetch);
    }

    #[test]
    fn recovery_backoff_doubles_per_attempt() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.backoff(1), r.backoff_base);
        assert_eq!(r.backoff(2), r.backoff_base * 2);
        assert_eq!(r.backoff(3), r.backoff_base * 4);
    }
}
