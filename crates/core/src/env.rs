//! Shared host services for one simulated machine.

use std::cell::RefCell;
use std::rc::Rc;

use fireworks_guestmem::HostMemory;
use fireworks_lang::Value;
use fireworks_msgbus::MessageBus;
use fireworks_netsim::HostNetwork;
use fireworks_obs::Obs;
use fireworks_sim::fault::{self, FaultInjector, FaultPlan, SharedInjector};
use fireworks_sim::{Clock, CostModel};
use fireworks_store::{DocumentStore, StoreCosts};

/// Host configuration for one experiment.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Physical RAM of the host.
    pub ram_bytes: u64,
    /// Linux `vm.swappiness` (the paper's Fig. 10 uses 60).
    pub swappiness: u8,
    /// Infrastructure cost table.
    pub costs: CostModel,
    /// Faults to inject (empty plan: nothing ever fails).
    pub fault_plan: FaultPlan,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            // A scaled-down host (the paper's testbed has 128 GiB; scaling
            // preserves every ratio while keeping simulations fast — see
            // DESIGN.md).
            ram_bytes: 24 << 30,
            swappiness: 60,
            costs: CostModel::default(),
            fault_plan: FaultPlan::default(),
        }
    }
}

/// The services all platforms on one host share: virtual clock, host
/// memory, the message bus, the document store, and the host network.
///
/// Cloning an env clones handles to the *same* services.
#[derive(Debug, Clone)]
pub struct PlatformEnv {
    /// The host's virtual clock.
    pub clock: Clock,
    /// The cost table.
    pub costs: Rc<CostModel>,
    /// Host physical memory.
    pub host_mem: HostMemory,
    /// Kafka-style message bus (parameter passer substrate).
    pub bus: Rc<RefCell<MessageBus<Value>>>,
    /// CouchDB-style document store.
    pub store: Rc<RefCell<DocumentStore>>,
    /// Host network (namespaces + NAT).
    pub net: Rc<RefCell<HostNetwork>>,
    /// The host's fault injector, shared by the store, the network, and
    /// the VM manager. Disabled (never fires) unless the [`EnvConfig`]
    /// armed a fault plan.
    pub injector: SharedInjector,
    /// The host's observability plane (span recorder + metrics registry),
    /// shared by every service and platform on this host.
    pub obs: Obs,
}

impl PlatformEnv {
    /// Builds the services for one host.
    pub fn new(config: EnvConfig) -> Self {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        PlatformEnv::with_shared(config, clock, obs)
    }

    /// Builds the services for one host on an *existing* clock and obs
    /// plane. This is how a cluster stamps out per-host environments:
    /// each host gets its own memory, bus, store, network, and fault
    /// injector, but all hosts advance one virtual timeline and emit
    /// into one trace/metrics registry.
    pub fn with_shared(config: EnvConfig, clock: Clock, obs: Obs) -> Self {
        let costs = Rc::new(config.costs);
        let host_mem = HostMemory::new(clock.clone(), config.ram_bytes, config.swappiness);
        let mut inj = FaultInjector::new(config.fault_plan);
        inj.attach_clock(clock.clone());
        let injector = fault::shared(inj);
        let bus = Rc::new(RefCell::new(MessageBus::new(
            clock.clone(),
            costs.bus.clone(),
        )));
        let mut raw_store = DocumentStore::new(clock.clone(), StoreCosts::default());
        raw_store.set_fault_injector(injector.clone());
        raw_store.set_obs(obs.clone());
        let store = Rc::new(RefCell::new(raw_store));
        let mut raw_net = HostNetwork::new(clock.clone(), costs.net.clone());
        raw_net.set_fault_injector(injector.clone());
        raw_net.set_obs(obs.clone());
        let net = Rc::new(RefCell::new(raw_net));
        PlatformEnv {
            clock,
            costs,
            host_mem,
            bus,
            store,
            net,
            injector,
            obs,
        }
    }

    /// A default-configured environment.
    pub fn default_env() -> Self {
        PlatformEnv::new(EnvConfig::default())
    }

    /// An environment with `plan` armed on the shared injector.
    pub fn with_fault_plan(plan: FaultPlan) -> Self {
        PlatformEnv::new(EnvConfig {
            fault_plan: plan,
            ..EnvConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_services() {
        let env = PlatformEnv::default_env();
        let env2 = env.clone();
        env.bus.borrow_mut().produce("t", Value::Int(1), 8);
        assert_eq!(env2.bus.borrow().len("t"), 1);
        let before = env2.clock.now();
        env.clock.advance(fireworks_sim::Nanos::from_millis(5));
        assert_eq!(
            env2.clock.now() - before,
            fireworks_sim::Nanos::from_millis(5)
        );
    }

    #[test]
    fn default_host_matches_fig10_methodology() {
        let cfg = EnvConfig::default();
        assert_eq!(cfg.swappiness, 60);
        assert!(cfg.ram_bytes >= 8 << 30);
    }
}
