//! Elastic control plane: scale-out/in with graceful drain, live delta
//! migration, and crash-safe scale-to-zero resurrection.
//!
//! The fixed-fleet [`crate::cluster::Cluster`] answers "how does a
//! cluster of N hosts behave"; this module answers "how many hosts
//! should be powered *right now*, and how do hosts join and leave
//! without losing work". An [`ElasticCluster`] owns a growable list of
//! per-host platforms on one virtual timeline and runs a periodic
//! control loop that:
//!
//! - **scales up** when queue pressure exceeds the policy threshold (or
//!   a sliding-window arrival predictor sees a rising trend), booting a
//!   fresh host after [`ElasticPolicy::boot_delay`];
//! - **scales down** by *gracefully draining* an idle host: it stops
//!   admitting, finishes its in-flight invocations, and hands its hot
//!   snapshots to survivors via [`crate::mesh::ChunkMesh`] delta
//!   transfers with bounded, exponentially backed-off retries — a drain
//!   that outlives [`ElasticPolicy::drain_deadline`] degrades to hard
//!   removal with rerouting, never lost requests;
//! - **retires** functions idle longer than
//!   [`ElasticPolicy::retire_after`] to a cluster-durable archive
//!   [`ChunkStore`] (scale-to-zero) and resurrects them on demand or on
//!   predictor signal — the archive is just another mesh donor, so
//!   resurrection is an ordinary delta fetch.
//!
//! # Fault model
//!
//! Three elasticity-specific fault sites can be armed on the cluster's
//! fault plan, alongside the existing
//! [`FaultSite::HostCrash`]:
//!
//! - [`FaultSite::DrainInterrupt`] — the draining host dies before its
//!   drain completes; the control plane degrades to hard removal and
//!   reroutes everything it was queueing.
//! - [`FaultSite::MigrationStall`] — one snapshot hand-off wedges
//!   mid-transfer; the receiver retries with exponential virtual-time
//!   backoff up to [`RecoveryPolicy::max_attempts`], then gives up (the
//!   survivor rebuilds from source on first demand instead).
//! - [`FaultSite::ScaleUpFail`] — a scale-up host fails to boot; the
//!   scale-up circuit breaker (mirroring [`RecoveryPolicy`]) backs off,
//!   and after [`SCALE_UP_GIVE_UP`] consecutive boot failures with no
//!   serving capacity left, queued admissions fail fast with
//!   [`PlatformError::HostUnavailable`] rather than waiting forever.
//!
//! # Invariants
//!
//! After every membership event (boot, drain completion, hard removal,
//! crash, retire, resurrect) the built-in auditor cross-checks:
//!
//! 1. every powered host's [`StoreAudit`] — chunk refcounts equal live
//!    manifest occurrences (no orphaned chunks, no dangling refs);
//! 2. the archive store's refcounts against the archived manifests;
//! 3. every alive mesh registration belongs to a powered host (or the
//!    archive) — no routes to dead or retired hosts.
//!
//! Violations are collected into [`ElasticReport::audit_violations`].
//! Request conservation — every submitted request reaches a terminal
//! outcome — is asserted at the end of every run, exactly like the
//! fixed cluster.
//!
//! # Determinism
//!
//! Everything is a pure function of config, schedule, and fault seed:
//! host ids are never reused, per-host fault seeds derive from the host
//! id, all bookkeeping iterates `BTreeMap`s, and the event queue orders
//! by `(time, seq)`. Two same-seed runs are byte-identical.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use fireworks_guestmem::SnapshotManifest;
use fireworks_obs::{cat, Obs, SpanContext, SpanId, TraceId};
use fireworks_sim::engine::EventQueue;
use fireworks_sim::fault::{self, FaultInjector, FaultPlan, FaultSite};
use fireworks_sim::trace::Phase;
use fireworks_sim::{Clock, Nanos};

use crate::api::{ConcurrentPlatform, FunctionSpec, PlatformError, StoreAudit};
use crate::cluster::{ClusterCompletion, HostView, Route, Router, HOST_SEED_STRIDE};
use crate::config::{PlatformConfig, RecoveryPolicy};
use crate::engine::EngineRequest;
use crate::env::{EnvConfig, PlatformEnv};
use crate::mesh::{ChunkMesh, SharedChunkMesh};
use crate::symbols::{fid, FunctionId, HostId};
use fireworks_store::ChunkStore;

/// Reserved mesh host id for the scale-to-zero archive store. Chosen
/// above any realistic host count (and within `u8` so delta fetches can
/// address the archive as peer `10.42.0.250`), and *above* real ids so
/// the mesh's lowest-id-first donor selection prefers a live replica
/// over the archive whenever one exists.
pub const ARCHIVE_HOST: usize = 250;

/// [`ARCHIVE_HOST`] as a typed mesh id.
fn archive_host_id() -> HostId {
    HostId::from_index(ARCHIVE_HOST)
}

/// Consecutive failed boot attempts after which the control plane stops
/// trying to scale up and fails queued admissions fast (bounds the run
/// under `ScaleUpFail` probability 1.0).
pub const SCALE_UP_GIVE_UP: u32 = 10;

/// How many predictor-ranked functions a freshly booted host prewarms
/// (when [`ElasticPolicy::prewarm`] is on).
const PREWARM_TOP_K: usize = 2;

/// Elasticity policy: when to grow, when to shrink, how to hand off.
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    /// Hosts the cluster never shrinks below (also the initial fleet).
    pub min_hosts: usize,
    /// Hosts the cluster never grows beyond.
    pub max_hosts: usize,
    /// Control-loop period: queue pressure, idleness, retirement, and
    /// the arrival predictor are evaluated once per interval.
    pub control_interval: Nanos,
    /// Scale up when cluster-wide queued requests exceed this many per
    /// active host.
    pub scale_up_queue: usize,
    /// Control ticks a host must sit fully idle (no in-flight work, no
    /// queue) before it becomes a drain candidate.
    pub scale_down_idle_ticks: u32,
    /// Virtual time between deciding to scale up and the new host
    /// serving (machine provisioning + boot).
    pub boot_delay: Nanos,
    /// Budget for a graceful drain; past it the host is hard-removed
    /// (queued work reroutes, unfinished hand-offs are abandoned).
    pub drain_deadline: Nanos,
    /// Retry/backoff/breaker policy for drain-time snapshot migrations,
    /// mirroring the restore-path [`RecoveryPolicy`]: per-function
    /// circuit breakers open after `circuit_threshold` consecutive
    /// migration failures, and the scale-up breaker reuses the same
    /// thresholds for boot failures.
    pub migration: RecoveryPolicy,
    /// Retire a function's snapshots to the archive after it has gone
    /// unseen for this long (`None`: never scale to zero).
    pub retire_after: Option<Nanos>,
    /// Control ticks of per-function arrival history the predictor
    /// keeps.
    pub predictor_window: usize,
    /// Whether to prewarm predictor-hot functions on freshly booted
    /// hosts and scale up proactively on a rising arrival trend.
    pub prewarm: bool,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            min_hosts: 1,
            max_hosts: 8,
            control_interval: Nanos::from_millis(50),
            scale_up_queue: 4,
            scale_down_idle_ticks: 3,
            boot_delay: Nanos::from_millis(200),
            drain_deadline: Nanos::from_millis(500),
            migration: RecoveryPolicy::default(),
            retire_after: None,
            predictor_window: 4,
            prewarm: false,
        }
    }
}

/// Shape and per-host configuration of an elastic cluster.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Invoker slots per host.
    pub slots_per_host: usize,
    /// Per-host admission-queue bound.
    pub host_queue_cap: usize,
    /// Per-host environment template; each host's fault-plan seed is
    /// re-derived from its id so hosts fail independently.
    pub env: EnvConfig,
    /// Per-host platform configuration.
    pub platform: PlatformConfig,
    /// The elasticity policy.
    pub policy: ElasticPolicy,
}

impl ElasticConfig {
    /// A config with `slots_per_host` slots, a queue bound of twice the
    /// slot count, and default environment, platform, and policy.
    pub fn new(slots_per_host: usize) -> Self {
        ElasticConfig {
            slots_per_host,
            host_queue_cap: slots_per_host * 2,
            env: EnvConfig::default(),
            platform: PlatformConfig::default(),
            policy: ElasticPolicy::default(),
        }
    }
}

/// Lifecycle phase of one elastic host. Ids are never reused, so every
/// host the cluster ever powered has a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Provisioning: boot scheduled, not yet admitting.
    Booting,
    /// Serving and admitting.
    Active,
    /// Admissions stopped; finishing in-flight work and handing hot
    /// snapshots to survivors.
    Draining,
    /// Left gracefully (drain completed or deadline-forced removal).
    Retired,
    /// Crashed, or failed to boot. Permanent, like a cluster crash.
    Dead,
}

impl HostPhase {
    /// Whether the host consumes machine-time right now (powered
    /// phases are what [`ElasticReport::host_time`] integrates).
    pub fn is_powered(self) -> bool {
        matches!(
            self,
            HostPhase::Booting | HostPhase::Active | HostPhase::Draining
        )
    }
}

/// A consecutive-failure circuit breaker driven by [`RecoveryPolicy`]
/// thresholds (per-function migration breakers and the scale-up
/// breaker).
#[derive(Debug, Default, Clone)]
struct Breaker {
    consecutive: u32,
    open_until: Option<Nanos>,
}

impl Breaker {
    fn is_open(&self, now: Nanos) -> bool {
        self.open_until.is_some_and(|t| now < t)
    }

    fn failure(&mut self, now: Nanos, policy: &RecoveryPolicy) {
        self.consecutive += 1;
        if self.consecutive >= policy.circuit_threshold {
            self.open_until = Some(now + policy.circuit_cooldown);
        }
    }

    fn success(&mut self) {
        self.consecutive = 0;
        self.open_until = None;
    }
}

/// Counters describing what the control plane did during a run.
#[derive(Debug, Default, Clone)]
pub struct ElasticStats {
    /// Boot attempts initiated by the scale-up path.
    pub scale_ups: u64,
    /// Boots that drew [`FaultSite::ScaleUpFail`] and died unprovisioned.
    pub scale_up_failures: u64,
    /// Graceful drains started by the scale-down path.
    pub drains_started: u64,
    /// Drains that completed within their deadline (in-flight work
    /// finished, hand-offs resolved).
    pub graceful_drains: u64,
    /// Drains forced into hard removal by the deadline.
    pub hard_removals: u64,
    /// Drains aborted by [`FaultSite::DrainInterrupt`] (the draining
    /// host died; its queue rerouted).
    pub drain_interrupts: u64,
    /// Snapshot hand-offs that completed (survivor made fully
    /// resident by delta fetch).
    pub migrations: u64,
    /// Hand-off attempts retried after a stall (with backoff).
    pub migration_retries: u64,
    /// [`FaultSite::MigrationStall`] draws observed.
    pub migration_stalls: u64,
    /// Hand-offs abandoned (retries exhausted, breaker open, or no
    /// eligible destination); the survivor rebuilds on demand instead.
    pub migration_failures: u64,
    /// Functions retired to the archive (scale-to-zero).
    pub retired_functions: u64,
    /// Archived functions brought back (on demand or by prewarm).
    pub resurrections: u64,
    /// Successful proactive prewarms on freshly booted hosts.
    pub prewarms: u64,
    /// Requests displaced from a dead or draining host's queue and
    /// rerouted. Conservation: each still reaches a terminal outcome.
    pub crash_reroutes: u64,
    /// Requests placed off their router-preferred host.
    pub rebalances: u64,
    /// Service starts on a host already fully holding the snapshot.
    pub locality_hits: u64,
}

/// The elastic cluster's output: completions plus control-plane
/// statistics and the audit trail.
#[derive(Debug)]
pub struct ElasticReport {
    /// One entry per request, ordered by request index.
    pub completions: Vec<ClusterCompletion>,
    /// What the control plane did.
    pub stats: ElasticStats,
    /// Most hosts ever simultaneously powered.
    pub peak_hosts: usize,
    /// Most invocations ever simultaneously in service.
    pub peak_inflight: usize,
    /// Deepest the cluster-level admission queue ever got.
    pub peak_cluster_queue_depth: usize,
    /// Integral of powered hosts over virtual time — the machine-time
    /// cost the elasticity-vs-overprovisioning trade is measured in.
    pub host_time: Nanos,
    /// Invariant-auditor findings (empty means every membership event
    /// left mesh, stores, and caches mutually consistent).
    pub audit_violations: Vec<String>,
    /// Hosts that crashed or failed to boot, in failure order.
    pub failed_hosts: Vec<HostId>,
    /// Simulator events (arrivals, completions, control ticks, boots,
    /// drains, migrations) the run processed — the deterministic
    /// denominator of an events/sec throughput measurement.
    pub events_processed: u64,
}

struct EHost<P: ConcurrentPlatform> {
    platform: P,
    env: PlatformEnv,
    phase: HostPhase,
    free: usize,
    waiting: VecDeque<usize>,
    inflight: BTreeMap<usize, P::InFlight>,
    idle_ticks: u32,
    label: String,
}

enum Ev {
    Arrive(usize),
    Complete {
        host: usize,
        index: usize,
    },
    ControlTick,
    BootDone {
        host: usize,
    },
    DrainDeadline {
        host: usize,
    },
    Migrate {
        dest: usize,
        donor: usize,
        function: FunctionId,
        attempt: u32,
    },
}

/// Per-run bookkeeping, separated from the cluster so host borrows and
/// run borrows don't fight (same split as the fixed cluster).
struct ERun {
    out: Vec<Option<ClusterCompletion>>,
    cluster_waiting: VecDeque<usize>,
    stats: ElasticStats,
    peak_hosts: usize,
    peak_inflight: usize,
    peak_cluster_queue_depth: usize,
    host_time: Nanos,
    last_sample: Nanos,
    failed_hosts: Vec<HostId>,
    audit_violations: Vec<String>,
    /// Per-function arrivals in the current control interval.
    tick_counts: BTreeMap<FunctionId, u64>,
    /// Previous interval's total (rising-trend detection).
    prev_tick_total: u64,
    /// Per-function sliding window of per-interval arrival counts.
    window: BTreeMap<FunctionId, VecDeque<u64>>,
    /// Last arrival instant per function (retirement input).
    last_arrival: BTreeMap<FunctionId, Nanos>,
    /// Outstanding drain hand-offs per draining host.
    pending: BTreeMap<usize, usize>,
    boot_failures_row: u32,
    boot_give_up: bool,
    /// Per-request detached trace roots, opened at arrival and closed at
    /// completion or rejection.
    roots: BTreeMap<usize, (TraceId, SpanId)>,
    /// Reused router-view scratch buffer (one allocation per run, not
    /// per routing decision).
    views_buf: Vec<HostView>,
}

/// A boxed host-platform constructor, retained by the cluster so the
/// control plane can stamp out new hosts mid-run.
pub type HostFactory<P> = Box<dyn FnMut(PlatformEnv, &PlatformConfig) -> P>;

/// A growable fleet of per-host platforms under an elasticity policy.
///
/// The factory passed to [`ElasticCluster::new`] is retained so the
/// control plane can stamp out new hosts mid-run; installed specs are
/// retained so new hosts can register every function on boot.
pub struct ElasticCluster<P: ConcurrentPlatform> {
    clock: Clock,
    obs: Obs,
    config: ElasticConfig,
    hosts: Vec<EHost<P>>,
    mesh: SharedChunkMesh,
    factory: HostFactory<P>,
    specs: BTreeMap<FunctionId, FunctionSpec>,
    /// The scale-to-zero archive: a cluster-durable chunk store
    /// registered in the mesh under [`ARCHIVE_HOST`] with an inert
    /// injector (the archive never crashes — it models replicated
    /// durable storage).
    archive: Rc<RefCell<ChunkStore>>,
    archive_env: PlatformEnv,
    /// Manifests archived so far, for the audit (the mesh holds the
    /// serving copies).
    archive_manifests: BTreeMap<FunctionId, SnapshotManifest>,
    /// Functions currently scaled to zero.
    archived: BTreeSet<FunctionId>,
    migration_breakers: BTreeMap<FunctionId, Breaker>,
    scale_up_breaker: Breaker,
    /// Invocations currently in service across the fleet, maintained
    /// incrementally so gauge sampling is O(1) per event.
    inflight_total: usize,
    g_hosts: fireworks_obs::Gauge,
    g_active: fireworks_obs::Gauge,
    g_inflight: fireworks_obs::Gauge,
    g_queue: fireworks_obs::Gauge,
}

impl<P: ConcurrentPlatform> ElasticCluster<P> {
    /// Builds an elastic cluster with `policy.min_hosts` hosts already
    /// active (a steady-state start; scale-up later in the run pays the
    /// boot delay). Host ids are assigned in creation order and never
    /// reused; each host's fault-plan seed derives from its id exactly
    /// like the fixed cluster, so arming a fault plan perturbs nothing
    /// else.
    ///
    /// # Panics
    ///
    /// Panics if `min_hosts == 0`, `min_hosts > max_hosts`,
    /// `max_hosts >= ARCHIVE_HOST`, or `slots_per_host == 0`.
    pub fn new(
        config: ElasticConfig,
        factory: impl FnMut(PlatformEnv, &PlatformConfig) -> P + 'static,
    ) -> Self {
        assert!(config.policy.min_hosts > 0, "need at least one host");
        assert!(
            config.policy.min_hosts <= config.policy.max_hosts,
            "min_hosts must not exceed max_hosts"
        );
        assert!(
            config.policy.max_hosts < ARCHIVE_HOST,
            "max_hosts collides with the archive's reserved mesh id"
        );
        assert!(config.slots_per_host > 0, "need at least one slot");
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        let mesh = ChunkMesh::shared();
        let mut archive_env_config = config.env.clone();
        // The archive never fails: empty plan, disabled injector.
        archive_env_config.fault_plan = FaultPlan::default();
        let archive_env = PlatformEnv::with_shared(archive_env_config, clock.clone(), obs.clone());
        let archive = Rc::new(RefCell::new(ChunkStore::new(archive_env.host_mem.clone())));
        mesh.borrow_mut().register(
            archive_host_id(),
            archive.clone(),
            fault::shared(FaultInjector::disabled()),
        );
        let g_hosts = obs.metrics().gauge("elastic.hosts", &[]);
        let g_active = obs.metrics().gauge("elastic.active_hosts", &[]);
        let g_inflight = obs.metrics().gauge("elastic.inflight", &[]);
        let g_queue = obs.metrics().gauge("elastic.queue_depth", &[]);
        let mut cluster = ElasticCluster {
            clock,
            obs,
            config,
            hosts: Vec::new(),
            mesh,
            factory: Box::new(factory),
            specs: BTreeMap::new(),
            archive,
            archive_env,
            archive_manifests: BTreeMap::new(),
            archived: BTreeSet::new(),
            migration_breakers: BTreeMap::new(),
            scale_up_breaker: Breaker::default(),
            inflight_total: 0,
            g_hosts,
            g_active,
            g_inflight,
            g_queue,
        };
        for _ in 0..cluster.config.policy.min_hosts {
            let h = cluster.create_host();
            cluster.hosts[h].phase = HostPhase::Active;
        }
        cluster
    }

    /// Stamps out one host in [`HostPhase::Booting`] and returns its id.
    fn create_host(&mut self) -> usize {
        let h = self.hosts.len();
        let mut env_config = self.config.env.clone();
        env_config.fault_plan.seed = env_config
            .fault_plan
            .seed
            .wrapping_add((h as u64).wrapping_mul(HOST_SEED_STRIDE));
        let env = PlatformEnv::with_shared(env_config, self.clock.clone(), self.obs.clone());
        let mut platform = (self.factory)(env.clone(), &self.config.platform);
        platform.attach_mesh(self.mesh.clone(), HostId::from_index(h));
        self.hosts.push(EHost {
            platform,
            env,
            phase: HostPhase::Booting,
            free: self.config.slots_per_host,
            waiting: VecDeque::new(),
            inflight: BTreeMap::new(),
            idle_ticks: 0,
            label: h.to_string(),
        });
        h
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared observability plane.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The cluster's chunk mesh.
    pub fn mesh(&self) -> &SharedChunkMesh {
        &self.mesh
    }

    /// Host `h`'s current lifecycle phase.
    pub fn phase(&self, h: HostId) -> HostPhase {
        self.hosts[h.index()].phase
    }

    /// Ids of currently powered hosts (booting, active, or draining),
    /// ascending.
    pub fn powered_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.phase.is_powered())
            .map(|(id, _)| HostId::from_index(id))
            .collect()
    }

    /// Host `h`'s platform.
    pub fn host(&self, h: HostId) -> &P {
        &self.hosts[h.index()].platform
    }

    /// Host `h`'s platform, mutably.
    pub fn host_mut(&mut self, h: HostId) -> &mut P {
        &mut self.hosts[h.index()].platform
    }

    /// Functions currently scaled to zero (archived, no live replica).
    pub fn archived_functions(&self) -> Vec<FunctionId> {
        self.archived.iter().copied().collect()
    }

    /// Installs `spec` on the lowest-id active host (building its
    /// snapshot there) and registers it on every other host; hosts
    /// booted later register it too. On a content-addressed cluster the
    /// other hosts pick the snapshot up by delta fetch on first demand.
    pub fn install(&mut self, spec: &FunctionSpec) -> Result<(), PlatformError> {
        let mut installed = false;
        for host in self.hosts.iter_mut() {
            if host.phase != HostPhase::Active {
                continue;
            }
            if installed {
                host.platform.register(spec)?;
            } else {
                host.platform.install(spec)?;
                installed = true;
            }
        }
        assert!(installed, "no active host to install on");
        self.specs.insert(fid(&spec.name), spec.clone());
        Ok(())
    }

    /// Runs the cluster's invariant audit now (see the module docs for
    /// the three checks). Empty means consistent.
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (id, host) in self.hosts.iter().enumerate() {
            if !host.phase.is_powered() {
                continue;
            }
            if let Some(audit) = host.platform.store_audit() {
                violations.extend(
                    audit
                        .verify()
                        .into_iter()
                        .map(|v| format!("host {id}: {v}")),
                );
            }
        }
        let archive_audit = StoreAudit {
            chunk_refs: self.archive.borrow().chunk_refcounts(),
            manifests: self
                .archive_manifests
                .iter()
                .map(|(k, v)| (k.name().to_string(), v.clone()))
                .collect(),
        };
        violations.extend(
            archive_audit
                .verify()
                .into_iter()
                .map(|v| format!("archive: {v}")),
        );
        for id in self.mesh.borrow().alive_hosts() {
            if id.index() == ARCHIVE_HOST {
                continue;
            }
            let powered = self
                .hosts
                .get(id.index())
                .is_some_and(|h| h.phase.is_powered());
            if !powered {
                violations.push(format!(
                    "mesh: alive registration for host {id}, which is not powered \
                     (route to nowhere)"
                ));
            }
        }
        violations
    }

    fn audit_into(&self, run: &mut ERun) {
        run.audit_violations.extend(self.audit());
    }

    /// Copies `name`'s snapshot chunks from a live mesh donor into the
    /// archive store and publishes the manifest under [`ARCHIVE_HOST`],
    /// making the archive a resurrection donor. Idempotent: a function
    /// already archived is not re-ingested (no refcount inflation).
    /// Returns whether the archive now holds the function. The copy is
    /// modeled as background replication traffic — it does not charge
    /// the serving timeline.
    fn archive_function(&mut self, function: FunctionId) -> bool {
        if self.archive_manifests.contains_key(&function) {
            return true;
        }
        let Some(donor) = self.mesh.borrow().donor_for(function, archive_host_id()) else {
            return false;
        };
        {
            let mut archive = self.archive.borrow_mut();
            let missing: BTreeSet<usize> = archive
                .missing_chunks(&donor.manifest)
                .into_iter()
                .collect();
            let donor_store = donor.store.borrow();
            for (i, chunk) in donor.manifest.chunks.iter().enumerate() {
                if !missing.contains(&i) {
                    archive.retain_chunk(chunk.hash);
                    continue;
                }
                let Some(run) = donor_store.chunk_frames(chunk.hash) else {
                    return false;
                };
                let frames: Vec<_> = run
                    .iter()
                    .map(|&(page, f)| {
                        (
                            page,
                            self.archive_env
                                .host_mem
                                .clone_frame_from(donor_store.host(), f),
                        )
                    })
                    .collect();
                archive.ingest_remote_chunk(chunk.hash, frames);
            }
        }
        self.mesh.borrow_mut().publish(
            archive_host_id(),
            function,
            donor.manifest.clone(),
            donor.template,
        );
        self.archive_manifests.insert(function, donor.manifest);
        let name = function.name();
        self.obs
            .metrics()
            .inc("elastic.archived", &[("function", &name)]);
        true
    }

    /// Current router views: only [`HostPhase::Active`] hosts are
    /// healthy — booting and draining hosts admit nothing. Fills the
    /// caller's scratch buffer instead of allocating per decision.
    fn views_into(&self, function: FunctionId, buf: &mut Vec<HostView>) {
        buf.clear();
        buf.extend(self.hosts.iter().enumerate().map(|(id, host)| HostView {
            id: HostId::from_index(id),
            healthy: host.phase == HostPhase::Active,
            inflight: host.inflight.len(),
            queue_depth: host.waiting.len(),
            slots: self.config.slots_per_host,
            queue_cap: self.config.host_queue_cap,
            residency: host.platform.residency(function),
        }));
    }

    fn powered_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.phase.is_powered()).count()
    }

    fn active_count(&self) -> usize {
        self.hosts
            .iter()
            .filter(|h| h.phase == HostPhase::Active)
            .count()
    }

    fn booting_count(&self) -> usize {
        self.hosts
            .iter()
            .filter(|h| h.phase == HostPhase::Booting)
            .count()
    }
}

impl<P: ConcurrentPlatform> ElasticCluster<P> {
    /// Drives `requests` (sorted by arrival) through the elastic
    /// cluster under `router` and returns the completions with
    /// control-plane statistics.
    ///
    /// # Panics
    ///
    /// Panics if `requests` are not sorted by arrival time, or if any
    /// request fails to reach a terminal outcome (request-conservation
    /// violation — a control-plane bug by definition).
    pub fn run<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
    ) -> ElasticReport {
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival time"
        );
        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            queue.schedule(r.arrival, Ev::Arrive(i));
        }
        let start = self.clock.now();
        // Anchor the control loop to the schedule itself: installs may
        // have advanced the clock far past the first arrival instant.
        let anchor = requests.first().map_or(start, |r| r.arrival);
        queue.schedule(
            anchor + self.config.policy.control_interval,
            Ev::ControlTick,
        );

        let mut run = ERun {
            out: {
                let mut v: Vec<Option<ClusterCompletion>> = Vec::with_capacity(requests.len());
                v.resize_with(requests.len(), || None);
                v
            },
            cluster_waiting: VecDeque::new(),
            stats: ElasticStats::default(),
            peak_hosts: self.powered_count(),
            peak_inflight: 0,
            peak_cluster_queue_depth: 0,
            host_time: Nanos::ZERO,
            last_sample: start,
            failed_hosts: Vec::new(),
            audit_violations: Vec::new(),
            tick_counts: BTreeMap::new(),
            prev_tick_total: 0,
            window: BTreeMap::new(),
            last_arrival: BTreeMap::new(),
            pending: BTreeMap::new(),
            boot_failures_row: 0,
            boot_give_up: false,
            roots: BTreeMap::new(),
            views_buf: Vec::new(),
        };

        let mut events_processed = 0u64;
        while let Some(ev) = queue.pop() {
            events_processed += 1;
            // Integrate powered-host machine time up to this event with
            // the pre-event fleet size.
            let dt = ev.at.saturating_sub(run.last_sample);
            run.host_time += dt * self.powered_count() as u64;
            run.last_sample = ev.at;
            self.clock.warp_to(ev.at);
            match ev.event {
                Ev::Arrive(i) => self.on_arrive(router, requests, i, &mut run, &mut queue),
                Ev::Complete { host, index } => {
                    self.on_complete(router, requests, host, index, &mut run, &mut queue)
                }
                Ev::ControlTick => self.on_tick(router, requests, &mut run, &mut queue),
                Ev::BootDone { host } => {
                    self.on_boot_done(router, requests, host, &mut run, &mut queue)
                }
                Ev::DrainDeadline { host } => {
                    self.on_drain_deadline(router, requests, host, &mut run, &mut queue)
                }
                Ev::Migrate {
                    dest,
                    donor,
                    function,
                    attempt,
                } => self.on_migrate(dest, donor, function, attempt, &mut run, &mut queue),
            }
            self.reap_mesh_dead(router, requests, &mut run, &mut queue);
            self.sample_gauges(&mut run);
        }

        self.audit_into(&mut run);
        let lost: Vec<usize> = run
            .out
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(
            lost.is_empty(),
            "request conservation violated: requests {lost:?} have no outcome \
             ({} reroutes, failed hosts: {:?})",
            run.stats.crash_reroutes,
            run.failed_hosts,
        );

        ElasticReport {
            completions: run
                .out
                .into_iter()
                .map(|c| c.expect("checked above"))
                .collect(),
            stats: run.stats,
            peak_hosts: run.peak_hosts,
            peak_inflight: run.peak_inflight,
            peak_cluster_queue_depth: run.peak_cluster_queue_depth,
            host_time: run.host_time,
            audit_violations: run.audit_violations,
            failed_hosts: run.failed_hosts,
            events_processed,
        }
    }

    fn on_arrive<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        i: usize,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        let f = requests[i].invoke.function;
        *run.tick_counts.entry(f).or_insert(0) += 1;
        run.last_arrival.insert(f, self.clock.now());
        // Admission mints the request's trace: one detached root span
        // per request, so spans from interleaved requests (and hosts)
        // never adopt each other.
        let rec = self.obs.recorder().clone();
        let trace = rec.next_trace_id();
        let root = rec.start_detached("request", cat::INVOKE, trace);
        let name = f.name();
        rec.attr(root, "function", &*name);
        run.roots.insert(i, (trace, root));
        if self.archived.remove(&f) {
            // Demand resurrection: the archive (or any later replica)
            // serves the delta fetch when a host first restores it.
            run.stats.resurrections += 1;
            rec.attr(root, "resurrected", true);
            self.obs
                .metrics()
                .inc("elastic.resurrections", &[("function", &name)]);
        }
        if !self.dispatch(router, requests, i, None, run, queue) {
            run.cluster_waiting.push_back(i);
        }
    }

    fn on_complete<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        index: usize,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        if let Some(token) = self.hosts[h].inflight.remove(&index) {
            self.hosts[h].platform.finish_invoke(token);
            self.inflight_total -= 1;
        }
        self.hosts[h].free += 1;
        match self.hosts[h].phase {
            HostPhase::Active => {
                while let Some(next) = self.hosts[h].waiting.pop_front() {
                    if self.reject_if_expired(requests, next, run, None) {
                        continue;
                    }
                    self.start_service(router, requests, h, next, run, queue);
                    break;
                }
                self.drain_cluster_queue(router, requests, run, queue);
            }
            HostPhase::Draining => self.try_finish_drain(h, run),
            _ => {}
        }
    }

    /// FIFO-drains the cluster admission queue through the router,
    /// stopping at the first request that still cannot place.
    fn drain_cluster_queue<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        while let Some(next) = run.cluster_waiting.pop_front() {
            if self.reject_if_expired(requests, next, run, None) {
                continue;
            }
            if !self.dispatch(router, requests, next, None, run, queue) {
                run.cluster_waiting.push_front(next);
                break;
            }
        }
    }

    /// Routes request `i` and places it: service, host queue, cluster
    /// queue, or terminal rejection. Returns `false` only when the
    /// request should wait on the cluster queue.
    fn dispatch<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        i: usize,
        rerouted_from: Option<usize>,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) -> bool {
        let now = self.clock.now();
        if self.reject_if_expired(requests, i, run, rerouted_from) {
            return true;
        }
        let rec = self.obs.recorder().clone();
        let r = &requests[i];
        if let Some(from) = rerouted_from {
            // A crash or drain displaced this request off host `from`;
            // the router consult below is a second routing decision.
            if let Some(&(_, root)) = run.roots.get(&i) {
                rec.instant_under(
                    root,
                    "rerouted",
                    cat::ROUTE,
                    vec![("from_host", from.into())],
                );
            }
        }
        if self.active_count() == 0 {
            // No serving capacity. If capacity is on its way (a boot in
            // flight) or the control loop can still provision some, the
            // request waits; otherwise nothing will ever serve it.
            let can_recover = self.booting_count() > 0
                || (!run.boot_give_up && self.powered_count() < self.config.policy.max_hosts);
            if can_recover {
                return false;
            }
            if let Some((_, root)) = run.roots.remove(&i) {
                rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, now);
                rec.attr(root, "rejected", "host_unavailable");
                rec.end_detached(root);
            }
            run.out[i] = Some(ClusterCompletion {
                index: i,
                host: rerouted_from.map(HostId::from_index),
                function: r.invoke.function,
                arrived: r.arrival,
                started: now,
                finished: now,
                result: Err(PlatformError::HostUnavailable {
                    function: r.invoke.function.name().to_string(),
                    host: rerouted_from,
                }),
            });
            return true;
        }
        let mut views = std::mem::take(&mut run.views_buf);
        self.views_into(r.invoke.function, &mut views);
        let decision = router.route(&r.invoke, &views);
        let (host, rebalanced) = match decision {
            Route::Host(h) => (h.index(), false),
            Route::Fallback(h) => (h.index(), true),
            Route::Defer => {
                run.views_buf = views;
                return false;
            }
        };
        debug_assert!(views[host].has_capacity(), "router picked a full host");
        run.views_buf = views;
        if rebalanced || rerouted_from.is_some() {
            run.stats.rebalances += 1;
            self.obs.metrics().inc("elastic.rebalances", &[]);
        }
        if self.hosts[host].free > 0 {
            self.start_service(router, requests, host, i, run, queue);
        } else {
            self.hosts[host].waiting.push_back(i);
        }
        true
    }

    /// Starts request `i` on host `h` now — unless the host's injector
    /// fires [`FaultSite::HostCrash`] at this service boundary.
    fn start_service<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        i: usize,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        let crashed = self.hosts[h]
            .env
            .injector
            .borrow_mut()
            .should_fail(FaultSite::HostCrash);
        if crashed {
            self.fail_host_and_reroute(router, requests, h, Some(i), run, queue);
            return;
        }
        let rec = self.obs.recorder().clone();
        let host = &mut self.hosts[h];
        host.free -= 1;
        host.idle_ticks = 0;
        let started = self.clock.now();
        let r = &requests[i];
        if host.platform.residency(r.invoke.function).is_full() {
            run.stats.locality_hits += 1;
            self.obs.metrics().inc("elastic.locality_hits", &[]);
        }
        let (trace, root) = run.roots.remove(&i).expect("request admitted");
        rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, started);
        // The service span goes on the shared open stack: every span the
        // host platform records nests under it and inherits the trace.
        // The flow pair draws the admission → service causal arrow.
        let service = rec.start_under(root, "service", cat::INVOKE);
        rec.attr(service, "host", h);
        rec.flow_out(root, trace.raw());
        rec.flow_in(service, trace.raw());
        let invoke = r.invoke.clone().with_trace(SpanContext {
            trace,
            parent: service,
        });
        let result = host.platform.begin_invoke(&invoke);
        let finished = self.clock.now();
        rec.end(service);
        rec.end_detached(root);
        let result = match result {
            Ok((invocation, token)) => {
                host.inflight.insert(i, token);
                self.inflight_total += 1;
                Ok(invocation)
            }
            Err(e) => Err(e),
        };
        run.out[i] = Some(ClusterCompletion {
            index: i,
            host: Some(HostId::from_index(h)),
            function: r.invoke.function,
            arrived: r.arrival,
            started,
            finished,
            result,
        });
        queue.schedule(finished, Ev::Complete { host: h, index: i });
    }

    /// Fails host `h` permanently (crash or drain interrupt): marks it
    /// dead in the mesh, cancels its pending hand-offs, and reroutes
    /// `trigger` plus everything in its admission queue. In-flight
    /// invocations still complete — their events are on the timeline.
    fn fail_host_and_reroute<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        trigger: Option<usize>,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        self.hosts[h].phase = HostPhase::Dead;
        self.hosts[h].idle_ticks = 0;
        self.mesh.borrow_mut().mark_dead(HostId::from_index(h));
        run.pending.remove(&h);
        run.failed_hosts.push(HostId::from_index(h));
        self.obs.metrics().inc(
            "elastic.host_crashes",
            &[("host", self.hosts[h].label.as_str())],
        );
        self.obs
            .recorder()
            .instant(format!("host_crash:{h}"), fireworks_obs::cat::FAULT);
        let mut displaced = std::mem::take(&mut self.hosts[h].waiting);
        if let Some(t) = trigger {
            displaced.push_front(t);
        }
        run.stats.crash_reroutes += displaced.len() as u64;
        if !displaced.is_empty() {
            self.obs
                .metrics()
                .add("elastic.crash_reroutes", &[], displaced.len() as u64);
        }
        while let Some(i) = displaced.pop_front() {
            if !self.dispatch(router, requests, i, Some(h), run, queue) {
                run.cluster_waiting.push_back(i);
            }
        }
        self.audit_into(run);
    }

    /// Fails hosts whose crash was first observed by a peer's delta
    /// fetch (the mesh marked them dead mid-transfer).
    fn reap_mesh_dead<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        let dead = self.mesh.borrow().dead_hosts();
        for h in dead {
            let h = h.index();
            if h == ARCHIVE_HOST {
                continue;
            }
            if !self
                .hosts
                .get(h)
                .is_some_and(|host| host.phase.is_powered())
            {
                continue;
            }
            self.fail_host_and_reroute(router, requests, h, None, run, queue);
        }
    }

    fn sample_gauges(&self, run: &mut ERun) {
        let powered = self.powered_count();
        run.peak_inflight = run.peak_inflight.max(self.inflight_total);
        run.peak_cluster_queue_depth = run.peak_cluster_queue_depth.max(run.cluster_waiting.len());
        run.peak_hosts = run.peak_hosts.max(powered);
        self.g_hosts.set(powered as i64);
        self.g_active.set(self.active_count() as i64);
        self.g_inflight.set(self.inflight_total as i64);
        self.g_queue.set(run.cluster_waiting.len() as i64);
    }

    /// Rejects request `i` with [`PlatformError::DeadlineExceeded`] if
    /// its deadline passed; returns whether it was rejected.
    fn reject_if_expired(
        &self,
        requests: &[EngineRequest],
        i: usize,
        run: &mut ERun,
        rerouted_from: Option<usize>,
    ) -> bool {
        let now = self.clock.now();
        let r = &requests[i];
        let Some(deadline) = r.invoke.deadline else {
            return false;
        };
        if now <= deadline {
            return false;
        }
        if let Some((_, root)) = run.roots.remove(&i) {
            let rec = self.obs.recorder();
            rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, now);
            rec.attr(root, "rejected", "deadline");
            rec.end_detached(root);
        }
        run.out[i] = Some(ClusterCompletion {
            index: i,
            host: rerouted_from.map(HostId::from_index),
            function: r.invoke.function,
            arrived: r.arrival,
            started: now,
            finished: now,
            result: Err(PlatformError::DeadlineExceeded {
                function: r.invoke.function.name().to_string(),
                deadline,
            }),
        });
        true
    }
}

impl<P: ConcurrentPlatform> ElasticCluster<P> {
    /// One control-loop evaluation: predictor update, retirement,
    /// scale-up, scale-down, queue drain, and rescheduling.
    fn on_tick<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        let now = self.clock.now();
        let policy = self.config.policy.clone();

        // Slide the arrival predictor's window forward one interval.
        let tick_total: u64 = run.tick_counts.values().sum();
        let counts = std::mem::take(&mut run.tick_counts);
        for (f, n) in &counts {
            let w = run.window.entry(*f).or_default();
            w.push_back(*n);
            while w.len() > policy.predictor_window {
                w.pop_front();
            }
        }
        for (f, w) in run.window.iter_mut() {
            if !counts.contains_key(f) {
                w.push_back(0);
                while w.len() > policy.predictor_window {
                    w.pop_front();
                }
            }
        }

        // Idleness accounting.
        for host in self.hosts.iter_mut() {
            if host.phase == HostPhase::Active
                && host.inflight.is_empty()
                && host.waiting.is_empty()
            {
                host.idle_ticks += 1;
            } else {
                host.idle_ticks = 0;
            }
        }

        // Scale-to-zero retirement.
        if let Some(after) = policy.retire_after {
            self.retire_idle_functions(after, now, requests, run);
        }

        // Scale up on queue pressure (or a rising trend, when the
        // predictor is armed for proactive capacity).
        let active = self.active_count();
        let pressure: usize = run.cluster_waiting.len()
            + self
                .hosts
                .iter()
                .filter(|h| h.phase == HostPhase::Active)
                .map(|h| h.waiting.len())
                .sum::<usize>();
        let overloaded = pressure > policy.scale_up_queue * active.max(1);
        let starved = active == 0 && (pressure > 0 || !run.cluster_waiting.is_empty());
        let rising = policy.prewarm
            && tick_total > run.prev_tick_total
            && tick_total as usize > policy.scale_up_queue;
        run.prev_tick_total = tick_total;
        if (overloaded || starved || rising)
            && self.booting_count() == 0
            && self.powered_count() < policy.max_hosts
            && !run.boot_give_up
            && !self.scale_up_breaker.is_open(now)
        {
            let h = self.create_host();
            run.stats.scale_ups += 1;
            self.obs.metrics().inc("elastic.scale_ups", &[]);
            queue.schedule(now + policy.boot_delay, Ev::BootDone { host: h });
        }

        // Give up on scale-up after too many consecutive boot failures
        // with no serving capacity: fail parked admissions fast so the
        // run terminates under ScaleUpFail = 1.0.
        if run.boot_failures_row >= SCALE_UP_GIVE_UP {
            run.boot_give_up = true;
        }
        if run.boot_give_up && self.active_count() == 0 && self.booting_count() == 0 {
            while let Some(i) = run.cluster_waiting.pop_front() {
                if self.reject_if_expired(requests, i, run, None) {
                    continue;
                }
                let r = &requests[i];
                run.out[i] = Some(ClusterCompletion {
                    index: i,
                    host: None,
                    function: r.invoke.function,
                    arrived: r.arrival,
                    started: now,
                    finished: now,
                    result: Err(PlatformError::HostUnavailable {
                        function: r.invoke.function.name().to_string(),
                        host: None,
                    }),
                });
            }
        }

        // Scale down: drain at most one idle host at a time, highest id
        // first (the most recently added capacity leaves first). Never
        // shed capacity while work is queued anywhere — an idle host
        // next to a backlogged peer is the cluster's catch-up capacity,
        // and draining it forces a boot (and a snapshot rebuild) the
        // moment the backlog surfaces as pressure.
        let draining = self.hosts.iter().any(|h| h.phase == HostPhase::Draining);
        if !draining && pressure == 0 && self.active_count() > policy.min_hosts {
            let victim = self
                .hosts
                .iter()
                .enumerate()
                .rev()
                .find(|(_, h)| {
                    h.phase == HostPhase::Active && h.idle_ticks >= policy.scale_down_idle_ticks
                })
                .map(|(id, _)| id);
            if let Some(h) = victim {
                self.start_drain(router, requests, h, run, queue);
            }
        }

        self.drain_cluster_queue(router, requests, run, queue);

        // Keep ticking while anything still needs the control loop:
        // unresolved requests, boots, drains, or pending hand-offs.
        let work_remains = run.out.iter().any(|c| c.is_none())
            || self.booting_count() > 0
            || self.hosts.iter().any(|h| h.phase == HostPhase::Draining)
            || run.pending.values().any(|&n| n > 0);
        if work_remains {
            queue.schedule(now + policy.control_interval, Ev::ControlTick);
        }
    }

    /// Retires functions unseen for longer than `after`: their chunks
    /// are copied to the archive, then every live replica is dropped.
    fn retire_idle_functions(
        &mut self,
        after: Nanos,
        now: Nanos,
        requests: &[EngineRequest],
        run: &mut ERun,
    ) {
        let mut resident: BTreeSet<FunctionId> = BTreeSet::new();
        for host in self.hosts.iter().filter(|h| h.phase == HostPhase::Active) {
            resident.extend(host.platform.hot_functions());
        }
        // Functions with outstanding demand — queued anywhere or in
        // service — are never retirement candidates, even when their
        // last *arrival* is past the horizon (a backlog served slower
        // than it arrived would otherwise thrash retire/resurrect).
        let mut busy: BTreeSet<FunctionId> = BTreeSet::new();
        for &i in &run.cluster_waiting {
            busy.insert(requests[i].invoke.function);
        }
        for host in &self.hosts {
            busy.extend(host.waiting.iter().map(|&i| requests[i].invoke.function));
            busy.extend(host.inflight.keys().map(|&i| requests[i].invoke.function));
        }
        for f in resident {
            if busy.contains(&f) {
                continue;
            }
            let last = run.last_arrival.get(&f).copied().unwrap_or(Nanos::ZERO);
            if now.saturating_sub(last) <= after {
                continue;
            }
            // Crash safety: the archive copy must exist before any
            // replica is dropped — a retirement that cannot reach the
            // archive keeps its live replicas.
            if !self.archive_function(f) {
                continue;
            }
            let mut any = false;
            for host in self.hosts.iter_mut() {
                if host.phase.is_powered() {
                    any |= host.platform.retire(f);
                }
            }
            if any {
                run.stats.retired_functions += 1;
                self.archived.insert(f);
                let name = f.name();
                self.obs
                    .metrics()
                    .inc("elastic.retired", &[("function", &name)]);
                self.audit_into(run);
            }
        }
    }

    /// A scale-up host finishes provisioning — or draws
    /// [`FaultSite::ScaleUpFail`] and dies unprovisioned.
    fn on_boot_done<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.hosts[h].phase != HostPhase::Booting {
            return;
        }
        let now = self.clock.now();
        let failed = self.hosts[h]
            .env
            .injector
            .borrow_mut()
            .should_fail(FaultSite::ScaleUpFail);
        if failed {
            self.hosts[h].phase = HostPhase::Dead;
            // The host never served: deregister (no crash record for
            // the reaper — there is nothing to drain).
            self.mesh.borrow_mut().deregister(HostId::from_index(h));
            run.failed_hosts.push(HostId::from_index(h));
            run.stats.scale_up_failures += 1;
            run.boot_failures_row += 1;
            self.scale_up_breaker
                .failure(now, &self.config.policy.migration);
            self.obs.metrics().inc("elastic.scale_up_failures", &[]);
            self.obs
                .recorder()
                .instant(format!("scale_up_fail:{h}"), fireworks_obs::cat::FAULT);
            self.audit_into(run);
            return;
        }
        self.hosts[h].phase = HostPhase::Active;
        run.boot_failures_row = 0;
        self.scale_up_breaker.success();
        // A late joiner must know every installed function.
        let specs: Vec<FunctionSpec> = self.specs.values().cloned().collect();
        for spec in &specs {
            // Registration failures surface on first invocation; a boot
            // must not abort the whole run.
            let _ = self.hosts[h].platform.register(spec);
        }
        if self.config.policy.prewarm {
            self.prewarm_host(h, run);
        }
        self.audit_into(run);
        self.drain_cluster_queue(router, requests, run, queue);
    }

    /// Prewarms the predictor's hottest functions on host `h`.
    fn prewarm_host(&mut self, h: usize, run: &mut ERun) {
        let mut scored: Vec<(u64, FunctionId)> = run
            .window
            .iter()
            .map(|(f, w)| (w.iter().sum::<u64>(), *f))
            .filter(|(score, _)| *score > 0)
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for (_, f) in scored.into_iter().take(PREWARM_TOP_K) {
            if self.hosts[h].platform.prewarm(f) {
                run.stats.prewarms += 1;
                let name = f.name();
                self.obs
                    .metrics()
                    .inc("elastic.prewarms", &[("function", &name)]);
                if self.archived.remove(&f) {
                    // Predictor-signal resurrection: the prewarm pulled
                    // an archived function back into live service.
                    run.stats.resurrections += 1;
                    self.obs
                        .metrics()
                        .inc("elastic.resurrections", &[("function", &name)]);
                }
            }
        }
    }

    /// Begins a graceful drain of host `h`: stop admitting, displace
    /// its queue, schedule one hand-off per hot function, and arm the
    /// drain deadline.
    fn start_drain<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        let now = self.clock.now();
        run.stats.drains_started += 1;
        self.obs
            .metrics()
            .inc("elastic.drains", &[("host", self.hosts[h].label.as_str())]);
        self.hosts[h].phase = HostPhase::Draining;
        let mut displaced = std::mem::take(&mut self.hosts[h].waiting);
        run.stats.crash_reroutes += displaced.len() as u64;
        while let Some(i) = displaced.pop_front() {
            if !self.dispatch(router, requests, i, Some(h), run, queue) {
                run.cluster_waiting.push_back(i);
            }
        }
        // The drain itself can be interrupted before any hand-off.
        if self.hosts[h]
            .env
            .injector
            .borrow_mut()
            .should_fail(FaultSite::DrainInterrupt)
        {
            run.stats.drain_interrupts += 1;
            self.obs.metrics().inc("elastic.drain_interrupts", &[]);
            self.fail_host_and_reroute(router, requests, h, None, run, queue);
            return;
        }
        // Schedule one hand-off per hot function to the cheapest
        // survivor that doesn't already hold it.
        let hot = self.hosts[h].platform.hot_functions();
        let mut scheduled = 0usize;
        for f in hot {
            let Some(dest) = self.pick_migration_dest(f, h) else {
                continue;
            };
            queue.schedule(
                now,
                Ev::Migrate {
                    dest,
                    donor: h,
                    function: f,
                    attempt: 1,
                },
            );
            scheduled += 1;
        }
        run.pending.insert(h, scheduled);
        queue.schedule(
            now + self.config.policy.drain_deadline,
            Ev::DrainDeadline { host: h },
        );
        self.try_finish_drain(h, run);
    }

    /// The cheapest active host (fewest missing bytes, then load, then
    /// id) that does not already fully hold `function`; `None` when no
    /// active host exists or every one already holds it.
    fn pick_migration_dest(&self, function: FunctionId, donor: usize) -> Option<usize> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(id, h)| *id != donor && h.phase == HostPhase::Active)
            .map(|(id, h)| {
                let residency = h.platform.residency(function);
                (residency, h.inflight.len() + h.waiting.len(), id)
            })
            .filter(|(residency, _, _)| !residency.is_full())
            .min_by_key(|(residency, load, id)| (residency.missing_bytes(), *load, *id))
            .map(|(_, _, id)| id)
    }

    /// One drain-time snapshot hand-off attempt.
    fn on_migrate(
        &mut self,
        dest: usize,
        donor: usize,
        function: FunctionId,
        attempt: u32,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.hosts[donor].phase != HostPhase::Draining {
            // The drain already ended (deadline, interrupt, crash);
            // nothing left to hand off.
            return;
        }
        let now = self.clock.now();
        let policy = self.config.policy.migration.clone();
        // The donor can die mid-hand-off.
        if self.hosts[donor]
            .env
            .injector
            .borrow_mut()
            .should_fail(FaultSite::DrainInterrupt)
        {
            run.stats.drain_interrupts += 1;
            self.obs.metrics().inc("elastic.drain_interrupts", &[]);
            run.pending.remove(&donor);
            // Rerouting of the donor's queue happens in the shared
            // failure path; the reaper sees the mesh death immediately.
            self.hosts[donor].phase = HostPhase::Dead;
            self.mesh.borrow_mut().mark_dead(HostId::from_index(donor));
            run.failed_hosts.push(HostId::from_index(donor));
            self.audit_into(run);
            return;
        }
        let breaker = self.migration_breakers.entry(function).or_default();
        if breaker.is_open(now) {
            run.stats.migration_failures += 1;
            self.resolve_handoff(donor, run);
            return;
        }
        // Re-validate the destination; it may have drained or died
        // since the hand-off was scheduled.
        let dest = if self.hosts[dest].phase == HostPhase::Active {
            Some(dest)
        } else {
            self.pick_migration_dest(function, donor)
        };
        let Some(dest) = dest else {
            run.stats.migration_failures += 1;
            self.migration_breakers
                .get_mut(&function)
                .expect("entry created above")
                .failure(now, &policy);
            self.resolve_handoff(donor, run);
            return;
        };
        // The transfer can stall (receiver-side wedge): retry with
        // exponential virtual-time backoff on a re-picked destination.
        let stalled = self.hosts[dest]
            .env
            .injector
            .borrow_mut()
            .should_fail(FaultSite::MigrationStall);
        if stalled {
            run.stats.migration_stalls += 1;
            self.obs.metrics().inc("elastic.migration_stalls", &[]);
            if attempt < policy.max_attempts {
                run.stats.migration_retries += 1;
                queue.schedule(
                    now + policy.backoff(attempt),
                    Ev::Migrate {
                        dest,
                        donor,
                        function,
                        attempt: attempt + 1,
                    },
                );
                return;
            }
            run.stats.migration_failures += 1;
            self.migration_breakers
                .get_mut(&function)
                .expect("entry created above")
                .failure(now, &policy);
            self.resolve_handoff(donor, run);
            return;
        }
        // The hand-off is the mesh's ordinary delta fetch: the
        // destination prewarns itself from the best donor (usually the
        // draining host — the lowest-id full holder). It gets its own
        // control-plane trace: the delta-fetch spans the prewarm records
        // nest under the hand-off span and inherit the migration trace.
        let rec = self.obs.recorder().clone();
        let mtrace = rec.next_trace_id();
        let mroot = rec.start_detached("migration", cat::MIGRATE, mtrace);
        let name = function.name();
        rec.attr(mroot, "function", &*name);
        rec.attr(mroot, "donor", donor);
        rec.attr(mroot, "dest", dest);
        let handoff = rec.start_under(mroot, "handoff", cat::MIGRATE);
        let migrated = self.hosts[dest].platform.prewarm(function);
        rec.end(handoff);
        rec.attr(
            mroot,
            "outcome",
            if migrated {
                "migrated"
            } else {
                "rebuild_fallback"
            },
        );
        rec.end_detached(mroot);
        if migrated {
            run.stats.migrations += 1;
            self.obs
                .metrics()
                .inc("elastic.migrations", &[("function", &name)]);
            self.migration_breakers
                .get_mut(&function)
                .expect("entry created above")
                .success();
        } else {
            // No donor qualified (publication raced away): fall back to
            // rebuild-from-source on first demand at the destination.
            run.stats.migration_failures += 1;
            self.migration_breakers
                .get_mut(&function)
                .expect("entry created above")
                .failure(now, &policy);
        }
        self.resolve_handoff(donor, run);
    }

    /// Marks one of `donor`'s outstanding hand-offs finished and checks
    /// whether the drain can now complete.
    fn resolve_handoff(&mut self, donor: usize, run: &mut ERun) {
        if let Some(n) = run.pending.get_mut(&donor) {
            *n = n.saturating_sub(1);
        }
        self.try_finish_drain(donor, run);
    }

    /// Completes a graceful drain once the host has no in-flight work
    /// and no outstanding hand-offs.
    fn try_finish_drain(&mut self, h: usize, run: &mut ERun) {
        if self.hosts[h].phase != HostPhase::Draining {
            return;
        }
        if !self.hosts[h].inflight.is_empty() {
            return;
        }
        if run.pending.get(&h).copied().unwrap_or(0) > 0 {
            return;
        }
        run.pending.remove(&h);
        run.stats.graceful_drains += 1;
        self.obs.metrics().inc("elastic.graceful_drains", &[]);
        self.hosts[h].phase = HostPhase::Retired;
        self.mesh.borrow_mut().deregister(HostId::from_index(h));
        self.audit_into(run);
    }

    /// The drain deadline fired: if the host is still draining, degrade
    /// to hard removal. Unfinished hand-offs are abandoned (survivors
    /// rebuild on demand); in-flight invocations still complete.
    fn on_drain_deadline<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        run: &mut ERun,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.hosts[h].phase != HostPhase::Draining {
            return;
        }
        run.stats.hard_removals += 1;
        self.obs.metrics().inc("elastic.hard_removals", &[]);
        run.pending.remove(&h);
        self.hosts[h].phase = HostPhase::Retired;
        self.mesh.borrow_mut().deregister(HostId::from_index(h));
        // A draining host admits nothing, but displaced requests may
        // have been parked back on its queue before the drain started;
        // conservation demands they reroute.
        let mut displaced = std::mem::take(&mut self.hosts[h].waiting);
        run.stats.crash_reroutes += displaced.len() as u64;
        while let Some(i) = displaced.pop_front() {
            if !self.dispatch(router, requests, i, Some(h), run, queue) {
                run.cluster_waiting.push_back(i);
            }
        }
        self.audit_into(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{InvokeRequest, StartMode};
    use crate::cluster::LocalityAffinity;
    use crate::config::SnapshotStorePolicy;
    use crate::fireworks::FireworksPlatform;
    use crate::symbols::fid;
    use fireworks_lang::Value;
    use fireworks_runtime::RuntimeKind;

    const SRC: &str = "
        fn main(params) {
            let n = params[\"n\"];
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }";

    fn spec(name: &str) -> FunctionSpec {
        FunctionSpec::new(
            name,
            SRC,
            RuntimeKind::NodeLike,
            Value::map([("n".to_string(), Value::Int(1000))]),
        )
    }

    fn dedup_config(policy: ElasticPolicy) -> ElasticConfig {
        let mut config = ElasticConfig::new(1);
        config.platform = PlatformConfig::builder()
            .snapshot_store(SnapshotStorePolicy::dedup())
            .build();
        config.policy = policy;
        config
    }

    fn requests(count: usize, gap: Nanos) -> Vec<EngineRequest> {
        (0..count)
            .map(|i| {
                EngineRequest::at(
                    gap * i as u64,
                    InvokeRequest::new(fid("f"), Value::map([("n".to_string(), Value::Int(200))]))
                        .with_mode(StartMode::Auto),
                )
            })
            .collect()
    }

    #[test]
    fn breaker_opens_at_threshold_and_resets_on_success() {
        let policy = RecoveryPolicy::default();
        let mut b = Breaker::default();
        let now = Nanos::from_millis(1);
        assert!(!b.is_open(now));
        for _ in 0..policy.circuit_threshold {
            b.failure(now, &policy);
        }
        assert!(b.is_open(now));
        assert!(!b.is_open(now + policy.circuit_cooldown), "half-opens");
        b.success();
        assert!(!b.is_open(now));
        assert_eq!(b.consecutive, 0);
    }

    #[test]
    fn powered_phases_are_booting_active_draining() {
        assert!(HostPhase::Booting.is_powered());
        assert!(HostPhase::Active.is_powered());
        assert!(HostPhase::Draining.is_powered());
        assert!(!HostPhase::Retired.is_powered());
        assert!(!HostPhase::Dead.is_powered());
    }

    #[test]
    fn steady_state_run_serves_everything_and_audits_clean() {
        let mut cluster =
            ElasticCluster::new(dedup_config(ElasticPolicy::default()), |env, cfg| {
                FireworksPlatform::with_config(env, cfg.clone())
            });
        cluster.install(&spec("f")).expect("installs");
        let report = cluster.run(
            &mut LocalityAffinity::new(),
            &requests(6, Nanos::from_millis(5)),
        );
        assert!(report.completions.iter().all(|c| c.result.is_ok()));
        assert!(
            report.audit_violations.is_empty(),
            "{:?}",
            report.audit_violations
        );
        assert!(report.failed_hosts.is_empty());
        assert!(report.host_time > Nanos::ZERO);
    }

    #[test]
    fn burst_scales_up_and_idle_tail_drains_back_down() {
        let policy = ElasticPolicy {
            min_hosts: 1,
            max_hosts: 4,
            scale_up_queue: 1,
            scale_down_idle_ticks: 2,
            control_interval: Nanos::from_micros(500),
            boot_delay: Nanos::from_millis(1),
            ..ElasticPolicy::default()
        };
        let mut cluster = ElasticCluster::new(dedup_config(policy), |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        cluster.install(&spec("f")).expect("installs");
        // A tight burst overloads one single-slot host, then a quiet
        // tail lets the control loop shrink the fleet again.
        let mut reqs = requests(12, Nanos::from_micros(100));
        let last = reqs.last().expect("non-empty").arrival;
        reqs.push(EngineRequest::at(
            last + Nanos::from_millis(50),
            InvokeRequest::new(fid("f"), Value::map([("n".to_string(), Value::Int(200))])),
        ));
        let report = cluster.run(&mut LocalityAffinity::new(), &reqs);
        assert!(report.completions.iter().all(|c| c.result.is_ok()));
        assert!(report.stats.scale_ups > 0, "burst must grow the fleet");
        assert!(report.peak_hosts > 1);
        assert!(
            report.stats.drains_started > 0 && report.stats.graceful_drains > 0,
            "idle tail must shrink it again: {:?}",
            report.stats
        );
        assert!(
            report.audit_violations.is_empty(),
            "{:?}",
            report.audit_violations
        );
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let fingerprint = |seed: u64| -> String {
            let mut config = dedup_config(ElasticPolicy {
                scale_up_queue: 1,
                max_hosts: 3,
                ..ElasticPolicy::default()
            });
            config.env.fault_plan = FaultPlan::uniform(seed, 0.05);
            let mut cluster = ElasticCluster::new(config, |env, cfg| {
                FireworksPlatform::with_config(env, cfg.clone())
            });
            cluster.install(&spec("f")).expect("installs");
            let report = cluster.run(
                &mut LocalityAffinity::new(),
                &requests(10, Nanos::from_millis(1)),
            );
            format!(
                "{:?}|{:?}|{:?}|{}",
                report
                    .completions
                    .iter()
                    .map(|c| (c.host, c.started.as_nanos(), c.finished.as_nanos()))
                    .collect::<Vec<_>>(),
                report.stats,
                report.failed_hosts,
                report.host_time.as_nanos(),
            )
        };
        assert_eq!(fingerprint(7), fingerprint(7));
    }
}
