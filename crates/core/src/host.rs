//! The guest's view of the outside world.
//!
//! Guest code reaches everything I/O-shaped through host calls
//! (`io_read`, `db_put`, `bus_consume`, `mmds_get`, ...). [`GuestHost`]
//! serves them against the shared platform services, charging each one on
//! the sandbox's data path, and accumulates the charged time so platforms
//! can attribute it to the *others* category of the paper's latency
//! breakdowns.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use fireworks_lang::{Host, LangError, Value};
use fireworks_msgbus::MessageBus;
use fireworks_sandbox::IoPath;
use fireworks_sim::{Clock, Nanos};
use fireworks_store::{DocumentStore, StoreError};

/// Store requests that hit a transient outage are retried this many
/// times in total before the outage surfaces to the guest.
const STORE_RETRY_ATTEMPTS: u32 = 3;
/// Backoff before the first store retry; doubles per retry, charged on
/// the virtual clock.
const STORE_RETRY_BACKOFF: Nanos = Nanos::from_micros(500);

/// Network charging mode for guest responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Traffic crosses the clone's NAT (Fireworks microVMs).
    ThroughNat,
    /// Direct host bridge (containers).
    Direct,
}

/// Serves guest host calls against platform services.
pub struct GuestHost {
    clock: Clock,
    io: IoPath,
    net_base: Nanos,
    net_per_kib: Nanos,
    nat_translate: Nanos,
    net_mode: NetMode,
    mmds_lookup: Nanos,
    bus: Rc<RefCell<MessageBus<Value>>>,
    store: Rc<RefCell<DocumentStore>>,
    mmds: BTreeMap<String, String>,
    default_params: Value,
    /// `print` output.
    pub printed: Vec<String>,
    /// Bodies passed to `http_respond`.
    pub responses: Vec<String>,
    /// Virtual time charged by host calls (attributed to "others").
    pub external_time: Nanos,
    /// Host calls served.
    pub calls_served: u64,
}

impl GuestHost {
    /// Builds a host for one invocation environment.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        clock: Clock,
        io: IoPath,
        net_costs: &fireworks_sim::cost::NetCosts,
        net_mode: NetMode,
        mmds_lookup: Nanos,
        bus: Rc<RefCell<MessageBus<Value>>>,
        store: Rc<RefCell<DocumentStore>>,
        default_params: Value,
    ) -> Self {
        GuestHost {
            clock,
            io,
            net_base: net_costs.packet_base,
            net_per_kib: net_costs.packet_per_kib,
            nat_translate: net_costs.nat_translate,
            net_mode,
            mmds_lookup,
            bus,
            store,
            mmds: BTreeMap::new(),
            default_params,
            printed: Vec::new(),
            responses: Vec::new(),
            external_time: Nanos::ZERO,
            calls_served: 0,
        }
    }

    /// Sets an MMDS key visible to the guest (e.g. `instance-id`).
    pub fn mmds_set(&mut self, key: &str, value: &str) {
        self.mmds.insert(key.to_string(), value.to_string());
    }

    fn net_packet(&self, kib: u64) -> Nanos {
        let mut t = self.net_base + self.net_per_kib * kib;
        if self.net_mode == NetMode::ThroughNat {
            t += self.nat_translate;
        }
        t
    }

    fn want_str(v: Option<&Value>, what: &str) -> Result<String, LangError> {
        match v {
            Some(Value::Str(s)) => Ok(s.to_string()),
            other => Err(LangError::runtime(format!(
                "{what} must be a string, got {:?}",
                other.map(|v| v.type_name())
            ))),
        }
    }

    fn want_int(v: Option<&Value>, what: &str) -> Result<i64, LangError> {
        match v {
            Some(Value::Int(i)) => Ok(*i),
            other => Err(LangError::runtime(format!(
                "{what} must be an int, got {:?}",
                other.map(|v| v.type_name())
            ))),
        }
    }

    /// Runs a store request with bounded retries: a transient outage
    /// ([`StoreError::Unavailable`]) backs off on the virtual clock and
    /// tries again; every other result returns immediately.
    fn retry_store<T>(
        clock: &Clock,
        mut op: impl FnMut() -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut backoff = STORE_RETRY_BACKOFF;
        let mut attempt = 1;
        loop {
            match op() {
                Err(StoreError::Unavailable) if attempt < STORE_RETRY_ATTEMPTS => {
                    clock.advance(backoff);
                    backoff = backoff * 2;
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn serve(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        match name {
            "io_read" | "io_write" => {
                let _file = Self::want_str(args.first(), "file name")?;
                let kib = Self::want_int(args.get(1), "size (KiB)")?.max(0) as u64;
                self.io.charge_disk_io(&self.clock, kib);
                Ok(Value::Int(kib as i64))
            }
            "net_send" => {
                let kib = Self::want_int(args.first(), "size (KiB)")?.max(0) as u64;
                self.clock.advance(self.net_packet(kib));
                Ok(Value::Null)
            }
            "http_respond" => {
                let body = match args.first() {
                    Some(v) => v.to_string(),
                    None => String::new(),
                };
                // The paper's faas-netlatency reply: body + ~500 B header.
                let bytes = body.len() as u64 + 500;
                self.clock.advance(self.net_packet(bytes.div_ceil(1024)));
                self.responses.push(body);
                Ok(Value::Null)
            }
            "db_put" => {
                let db = Self::want_str(args.first(), "database")?;
                let id = Self::want_str(args.get(1), "document id")?;
                let body = args
                    .get(2)
                    .cloned()
                    .ok_or_else(|| LangError::runtime("db_put needs a document"))?;
                self.clock.advance(self.net_packet(1));
                let rev = Self::retry_store(&self.clock, || {
                    self.store.borrow_mut().put(&db, &id, &body, None)
                })
                .map_err(|e| LangError::runtime(e.to_string()))?;
                Ok(Value::Int(rev as i64))
            }
            "db_get" => {
                let db = Self::want_str(args.first(), "database")?;
                let id = Self::want_str(args.get(1), "document id")?;
                self.clock.advance(self.net_packet(1));
                match Self::retry_store(&self.clock, || self.store.borrow().get(&db, &id)) {
                    Ok(doc) => Ok(doc.body),
                    // An outage that survives the retries is an error; a
                    // missing document reads as null (HTTP 404).
                    Err(e @ StoreError::Unavailable) => Err(LangError::runtime(e.to_string())),
                    Err(_) => Ok(Value::Null),
                }
            }
            "db_delete" => {
                let db = Self::want_str(args.first(), "database")?;
                let id = Self::want_str(args.get(1), "document id")?;
                self.clock.advance(self.net_packet(1));
                match Self::retry_store(&self.clock, || self.store.borrow_mut().delete(&db, &id)) {
                    Ok(_) => Ok(Value::Bool(true)),
                    Err(e @ StoreError::Unavailable) => Err(LangError::runtime(e.to_string())),
                    Err(_) => Ok(Value::Bool(false)),
                }
            }
            "db_find" => {
                let db = Self::want_str(args.first(), "database")?;
                let field = Self::want_str(args.get(1), "field")?;
                let value = args
                    .get(2)
                    .cloned()
                    .ok_or_else(|| LangError::runtime("db_find needs a value"))?;
                self.clock.advance(self.net_packet(1));
                // A missing database reads as empty (HTTP 404 → no rows),
                // which install-time warm-up relies on.
                let docs = match Self::retry_store(&self.clock, || {
                    self.store.borrow().find(&db, &field, &value)
                }) {
                    Ok(docs) => docs,
                    Err(e @ StoreError::Unavailable) => {
                        return Err(LangError::runtime(e.to_string()))
                    }
                    Err(_) => Vec::new(),
                };
                Ok(Value::array(docs.into_iter().map(|d| d.body).collect()))
            }
            "db_changes" => {
                let db = Self::want_str(args.first(), "database")?;
                let since = Self::want_int(args.get(1), "since")?.max(0) as u64;
                self.clock.advance(self.net_packet(1));
                let changes = match Self::retry_store(&self.clock, || {
                    self.store.borrow().changes_since(&db, since)
                }) {
                    Ok(changes) => changes,
                    Err(e @ StoreError::Unavailable) => {
                        return Err(LangError::runtime(e.to_string()))
                    }
                    Err(_) => Vec::new(),
                };
                Ok(Value::array(
                    changes
                        .into_iter()
                        .map(|c| {
                            Value::map([
                                ("seq".to_string(), Value::Int(c.seq as i64)),
                                ("id".to_string(), Value::str(c.id)),
                                ("deleted".to_string(), Value::Bool(c.deleted)),
                            ])
                        })
                        .collect(),
                ))
            }
            "bus_consume" => {
                let topic = Self::want_str(args.first(), "topic")?;
                let value = self
                    .bus
                    .borrow()
                    .consume_latest(&topic, 1024)
                    .map_err(|e| LangError::runtime(e.to_string()))?;
                Ok(value.deep_clone())
            }
            "bus_produce" => {
                let topic = Self::want_str(args.first(), "topic")?;
                let value = args
                    .get(1)
                    .cloned()
                    .ok_or_else(|| LangError::runtime("bus_produce needs a value"))?;
                let offset = self
                    .bus
                    .borrow_mut()
                    .produce(&topic, value.deep_clone(), 1024);
                Ok(Value::Int(offset as i64))
            }
            "mmds_get" => {
                let key = Self::want_str(args.first(), "key")?;
                self.clock.advance(self.mmds_lookup);
                Ok(self.mmds.get(&key).map(Value::str).unwrap_or(Value::Null))
            }
            "default_params" => Ok(self.default_params.deep_clone()),
            "now" => Ok(Value::Int(self.clock.now().as_nanos() as i64)),
            "log" => {
                let text = args
                    .iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                self.printed.push(text);
                Ok(Value::Null)
            }
            other => Err(LangError::runtime(format!("unknown host call `{other}`"))),
        }
    }
}

impl Host for GuestHost {
    fn print(&mut self, text: &str) {
        self.printed.push(text.to_string());
    }

    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        self.calls_served += 1;
        let before = self.clock.now();
        let result = self.serve(name, args);
        self.external_time += self.clock.now() - before;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_sandbox::IoPathKind;
    use fireworks_sim::CostModel;
    use fireworks_store::StoreCosts;

    fn host(kind: IoPathKind, mode: NetMode) -> GuestHost {
        let clock = Clock::new();
        let costs = Rc::new(CostModel::default());
        GuestHost::new(
            clock.clone(),
            IoPath::new(kind, costs.clone()),
            &costs.net,
            mode,
            costs.microvm.mmds_lookup,
            Rc::new(RefCell::new(MessageBus::new(
                clock.clone(),
                costs.bus.clone(),
            ))),
            Rc::new(RefCell::new(DocumentStore::new(
                clock,
                StoreCosts::default(),
            ))),
            Value::map([("n".to_string(), Value::Int(5))]),
        )
    }

    #[test]
    fn io_calls_charge_sandbox_path_costs() {
        let mut overlay = host(IoPathKind::OverlayFs, NetMode::Direct);
        let mut gvisor = host(IoPathKind::GvisorGofer, NetMode::Direct);
        let args = [Value::str("f"), Value::Int(10)];
        overlay.host_call("io_write", &args).expect("ok");
        gvisor.host_call("io_write", &args).expect("ok");
        assert!(gvisor.external_time > overlay.external_time);
    }

    #[test]
    fn db_round_trip_through_host_calls() {
        let mut h = host(IoPathKind::VirtioBlk, NetMode::ThroughNat);
        let doc = Value::map([("x".to_string(), Value::Int(1))]);
        let rev = h
            .host_call("db_put", &[Value::str("db"), Value::str("id1"), doc])
            .expect("puts");
        assert_eq!(rev, Value::Int(1));
        let got = h
            .host_call("db_get", &[Value::str("db"), Value::str("id1")])
            .expect("gets");
        let Value::Map(m) = &got else { panic!("map") };
        assert_eq!(m.borrow()["x"], Value::Int(1));
        let missing = h
            .host_call("db_get", &[Value::str("db"), Value::str("nope")])
            .expect("null");
        assert_eq!(missing, Value::Null);
    }

    #[test]
    fn change_feed_surfaces_as_values() {
        let mut h = host(IoPathKind::VirtioBlk, NetMode::Direct);
        let doc = Value::map([("x".to_string(), Value::Int(1))]);
        h.host_call("db_put", &[Value::str("db"), Value::str("a"), doc])
            .expect("puts");
        let changes = h
            .host_call("db_changes", &[Value::str("db"), Value::Int(0)])
            .expect("changes");
        let Value::Array(a) = &changes else {
            panic!("array")
        };
        assert_eq!(a.borrow().len(), 1);
    }

    #[test]
    fn bus_and_mmds_serve_instance_identity() {
        let mut h = host(IoPathKind::VirtioBlk, NetMode::ThroughNat);
        h.mmds_set("instance-id", "vm-42");
        let id = h
            .host_call("mmds_get", &[Value::str("instance-id")])
            .expect("id");
        assert_eq!(id, Value::str("vm-42"));
        h.host_call("bus_produce", &[Value::str("params-vm-42"), Value::Int(99)])
            .expect("produces");
        let got = h
            .host_call("bus_consume", &[Value::str("params-vm-42")])
            .expect("consumes");
        assert_eq!(got, Value::Int(99));
    }

    #[test]
    fn default_params_are_served_fresh() {
        let mut h = host(IoPathKind::VirtioBlk, NetMode::Direct);
        let a = h.host_call("default_params", &[]).expect("params");
        let b = h.host_call("default_params", &[]).expect("params");
        // Deep-cloned: mutating one must not affect the other.
        if let Value::Map(m) = &a {
            m.borrow_mut().insert("n".to_string(), Value::Int(-1));
        }
        let Value::Map(m) = &b else { panic!("map") };
        assert_eq!(m.borrow()["n"], Value::Int(5));
    }

    #[test]
    fn http_respond_collects_bodies_and_charges_nat() {
        let mut direct = host(IoPathKind::OverlayFs, NetMode::Direct);
        let mut nat = host(IoPathKind::VirtioBlk, NetMode::ThroughNat);
        direct
            .host_call("http_respond", &[Value::str("hello")])
            .expect("ok");
        nat.host_call("http_respond", &[Value::str("hello")])
            .expect("ok");
        assert_eq!(direct.responses, vec!["hello"]);
        assert!(nat.external_time > direct.external_time, "NAT adds cost");
    }

    #[test]
    fn unknown_host_call_is_an_error() {
        let mut h = host(IoPathKind::VirtioBlk, NetMode::Direct);
        assert!(h.host_call("launch_missiles", &[]).is_err());
    }
}
