//! Cluster-wide chunk mesh: who holds which snapshot, chunk-complete.
//!
//! Content-addressed snapshot distribution needs one piece of shared
//! control-plane state: which *alive* hosts hold a complete chunk set
//! for which functions, so a host that was routed a request it cannot
//! serve locally can pick a donor and fetch only its missing chunks
//! (the delta) instead of rebuilding the snapshot from source.
//!
//! The [`ChunkMesh`] is that state. Each host that runs a
//! content-addressed store ([`crate::config::SnapshotStorePolicy::Dedup`])
//! registers its [`ChunkStore`] and fault injector under its cluster
//! host id; when it caches a snapshot it *publishes* the manifest (plus
//! the VM-state template a fetched copy is reconstituted with), and when
//! the LRU evicts it the publication is *retracted*. Donor selection
//! re-checks chunk completeness against the donor's live store, so a
//! stale publication (chunks since evicted) is never offered.
//!
//! Everything here is bookkeeping over [`BTreeMap`]s — deterministic
//! iteration, no clock access — so cluster runs stay byte-identical.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use fireworks_guestmem::SnapshotManifest;
use fireworks_microvm::SnapshotTemplate;
use fireworks_sim::fault::SharedInjector;
use fireworks_store::ChunkStore;

use crate::symbols::{FunctionId, HostId};

/// A cluster-shared handle to the mesh.
pub type SharedChunkMesh = Rc<RefCell<ChunkMesh>>;

/// One host's registration in the mesh.
struct MeshHost {
    alive: bool,
    store: Rc<RefCell<ChunkStore>>,
    injector: SharedInjector,
    /// Function → the manifest this host claims to hold, plus the
    /// template needed to rebuild a [`fireworks_microvm::VmFullSnapshot`]
    /// around a fetched copy.
    published: BTreeMap<FunctionId, (SnapshotManifest, SnapshotTemplate)>,
}

/// What a fetching host learns about its chosen donor.
pub struct DonorInfo {
    /// The donor's cluster host id.
    pub host: HostId,
    /// The published manifest (cloned; the fetcher owns its copy).
    pub manifest: SnapshotManifest,
    /// The VM-state template to reconstitute the snapshot with.
    pub template: SnapshotTemplate,
    /// The donor's chunk store (frames are copied out of it).
    pub store: Rc<RefCell<ChunkStore>>,
    /// The donor's fault injector: the fetcher draws
    /// [`fireworks_sim::fault::FaultSite::HostCrash`] on it at chunk
    /// boundaries, so a donor crash mid-transfer is observed by the
    /// party it actually strands.
    pub injector: SharedInjector,
}

/// Cluster-wide snapshot-holding registry (see module docs).
#[derive(Default)]
pub struct ChunkMesh {
    hosts: BTreeMap<HostId, MeshHost>,
}

impl std::fmt::Debug for ChunkMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkMesh")
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ChunkMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        ChunkMesh::default()
    }

    /// A fresh shared handle.
    pub fn shared() -> SharedChunkMesh {
        Rc::new(RefCell::new(ChunkMesh::new()))
    }

    /// Registers `host`'s chunk store and injector. Idempotent per id:
    /// re-registering replaces the slot (fresh publications).
    pub fn register(
        &mut self,
        host: HostId,
        store: Rc<RefCell<ChunkStore>>,
        injector: SharedInjector,
    ) {
        self.hosts.insert(
            host,
            MeshHost {
                alive: true,
                store,
                injector,
                published: BTreeMap::new(),
            },
        );
    }

    /// Whether `host` is registered and alive.
    pub fn is_alive(&self, host: HostId) -> bool {
        self.hosts.get(&host).is_some_and(|h| h.alive)
    }

    /// Marks `host` dead: it stops being offered as a donor and its
    /// publications are ignored. Permanent, like a cluster host crash.
    pub fn mark_dead(&mut self, host: HostId) {
        if let Some(h) = self.hosts.get_mut(&host) {
            h.alive = false;
        }
    }

    /// Registered hosts currently marked dead, ascending. The cluster
    /// polls this to fail hosts whose crash was first observed by a
    /// fetching peer rather than at a service boundary.
    pub fn dead_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|(_, h)| !h.alive)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Removes `host`'s registration entirely — publications, store, and
    /// injector. This is the *graceful* exit (a completed drain or
    /// retirement): unlike [`ChunkMesh::mark_dead`] the host leaves no
    /// dead-host record, so the cluster does not treat it as a crash.
    pub fn deregister(&mut self, host: HostId) {
        self.hosts.remove(&host);
    }

    /// Registered-and-alive host ids, ascending. The invariant auditor
    /// cross-checks this against the control plane's membership view: an
    /// alive mesh entry for a retired or dead host is a route to nowhere.
    pub fn alive_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|(_, h)| h.alive)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Functions `host` currently publishes, in ascending id order
    /// (BTreeMap order). Empty when the host is unregistered.
    pub fn published_functions(&self, host: HostId) -> Vec<FunctionId> {
        self.hosts
            .get(&host)
            .map(|h| h.published.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Publishes `host`'s claim to hold `function`'s full chunk set.
    pub fn publish(
        &mut self,
        host: HostId,
        function: FunctionId,
        manifest: SnapshotManifest,
        template: SnapshotTemplate,
    ) {
        if let Some(h) = self.hosts.get_mut(&host) {
            h.published.insert(function, (manifest, template));
        }
    }

    /// Withdraws `host`'s claim for `function` (LRU eviction, refresh).
    pub fn retract(&mut self, host: HostId, function: FunctionId) {
        if let Some(h) = self.hosts.get_mut(&host) {
            h.published.remove(&function);
        }
    }

    /// Any alive host's published manifest for `function` (lowest host id
    /// wins) — the cluster-wide "the snapshot exists somewhere" signal a
    /// host's partial-residency answer is computed against. Publications
    /// are re-validated against the publisher's store.
    pub fn manifest_for(&self, function: FunctionId) -> Option<&SnapshotManifest> {
        self.hosts.values().find_map(|h| {
            if !h.alive {
                return None;
            }
            let (manifest, _) = h.published.get(&function)?;
            (h.store.borrow().missing_bytes(manifest) == 0).then_some(manifest)
        })
    }

    /// Picks a donor for `function`: the lowest-id alive host other than
    /// `exclude` whose store still holds every chunk of its published
    /// manifest.
    pub fn donor_for(&self, function: FunctionId, exclude: HostId) -> Option<DonorInfo> {
        self.hosts.iter().find_map(|(&id, h)| {
            if id == exclude || !h.alive {
                return None;
            }
            let (manifest, template) = h.published.get(&function)?;
            if h.store.borrow().missing_bytes(manifest) != 0 {
                return None;
            }
            Some(DonorInfo {
                host: id,
                manifest: manifest.clone(),
                template: template.clone(),
                store: h.store.clone(),
                injector: h.injector.clone(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::fid;
    use fireworks_guestmem::HostMemory;
    use fireworks_microvm::{MicroVmConfig, VmManager};
    use fireworks_runtime::RuntimeProfile;
    use fireworks_sim::fault::{self, FaultInjector};
    use fireworks_sim::Clock;

    fn injector() -> SharedInjector {
        fault::shared(FaultInjector::disabled())
    }

    /// A real snapshot ingested into a fresh store on `host_mem`.
    fn published_store(
        clock: &Clock,
    ) -> (Rc<RefCell<ChunkStore>>, SnapshotManifest, SnapshotTemplate) {
        let host = HostMemory::new(clock.clone(), 4 << 30, 60);
        let mut mgr = VmManager::new(
            clock.clone(),
            Rc::new(fireworks_sim::CostModel::default()),
            host.clone(),
        );
        let mut vm = mgr.create(MicroVmConfig::default());
        mgr.boot(&mut vm).expect("boots");
        mgr.launch_runtime(
            &mut vm,
            RuntimeProfile::node(),
            "fn main(n) { return n; }",
            fireworks_lang::JitConfig::default(),
        )
        .expect("launches");
        let snap = mgr.snapshot(&mut vm);
        let template = snap.template();
        let mut store = ChunkStore::new(host);
        let (manifest, frames) = store.ingest_snapshot(snap.mem(), 64);
        // The test only needs the store to hold the chunks; drop the
        // caller refs the ingest handed out.
        for (_, f) in frames {
            store.host().release(f);
        }
        (Rc::new(RefCell::new(store)), manifest, template)
    }

    #[test]
    fn donor_selection_skips_dead_and_incomplete_hosts() {
        let clock = Clock::new();
        let mesh = ChunkMesh::shared();
        let (s0, m0, t0) = published_store(&clock);
        let (s1, m1, t1) = published_store(&clock);
        let (h0, h1, h9) = (
            HostId::from_index(0),
            HostId::from_index(1),
            HostId::from_index(9),
        );
        let f = fid("f");
        {
            let mut mesh = mesh.borrow_mut();
            mesh.register(h0, s0, injector());
            mesh.register(h1, s1, injector());
            mesh.publish(h0, f, m0.clone(), t0);
            mesh.publish(h1, f, m1.clone(), t1);
        }
        // Lowest-id alive donor wins; the asker itself is excluded.
        assert_eq!(mesh.borrow().donor_for(f, h9).expect("donor").host, h0);
        assert_eq!(mesh.borrow().donor_for(f, h0).expect("donor").host, h1);
        assert!(
            mesh.borrow().donor_for(fid("g"), h9).is_none(),
            "never published"
        );
        // Death removes a host from donor rotation permanently.
        mesh.borrow_mut().mark_dead(h0);
        assert_eq!(mesh.borrow().donor_for(f, h9).expect("donor").host, h1);
        assert_eq!(mesh.borrow().dead_hosts(), vec![h0]);
        // A stale publication (chunks evicted from the store) is skipped.
        {
            let mesh_ref = mesh.borrow();
            let donor = mesh_ref.donor_for(f, h0).expect("donor");
            donor.store.borrow_mut().release_manifest(&m1);
        }
        assert!(mesh.borrow().donor_for(f, h9).is_none(), "no valid donor");
        assert!(mesh.borrow().manifest_for(f).is_none());
    }

    #[test]
    fn deregister_removes_host_without_a_dead_record() {
        let clock = Clock::new();
        let mesh = ChunkMesh::shared();
        let (s0, m0, t0) = published_store(&clock);
        let h0 = HostId::from_index(0);
        let f = fid("f");
        mesh.borrow_mut().register(h0, s0, injector());
        mesh.borrow_mut().publish(h0, f, m0, t0);
        assert_eq!(mesh.borrow().alive_hosts(), vec![h0]);
        assert_eq!(mesh.borrow().published_functions(h0), vec![f]);
        mesh.borrow_mut().deregister(h0);
        // A graceful exit: the host is simply gone — no donor offers, no
        // manifest, and crucially no dead-host record for the cluster's
        // crash reaper to act on.
        assert!(mesh.borrow().alive_hosts().is_empty());
        assert!(mesh.borrow().dead_hosts().is_empty());
        assert!(mesh.borrow().manifest_for(f).is_none());
        assert!(mesh.borrow().published_functions(h0).is_empty());
        assert!(!mesh.borrow().is_alive(h0));
    }

    #[test]
    fn retract_withdraws_a_publication() {
        let clock = Clock::new();
        let mesh = ChunkMesh::shared();
        let (s0, m0, t0) = published_store(&clock);
        let h0 = HostId::from_index(0);
        let f = fid("f");
        mesh.borrow_mut().register(h0, s0, injector());
        mesh.borrow_mut().publish(h0, f, m0, t0);
        assert!(mesh.borrow().manifest_for(f).is_some());
        mesh.borrow_mut().retract(h0, f);
        assert!(mesh.borrow().manifest_for(f).is_none());
    }
}
