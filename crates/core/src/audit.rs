//! Security implications of snapshot cloning (paper §6).
//!
//! Clones restored from one snapshot share the guest RNG state and the
//! address-space layout, reducing effective entropy. The paper's
//! mitigations — reseeding the guest RNG from host entropy on restore and
//! periodically regenerating the snapshot (like REAP) — are modelled here
//! as a [`SecurityPolicy`] enforced by the platform and a
//! [`SecurityAudit`] report per function.

use fireworks_sim::Nanos;

/// Mitigation policy for snapshot-clone entropy sharing.
#[derive(Debug, Clone, Copy)]
pub struct SecurityPolicy {
    /// Re-seed the guest RNG from host entropy on every restore (cheap;
    /// available on IvyBridge+ via RDRAND per the paper).
    pub reseed_rng_on_restore: bool,
    /// Regenerate the function's snapshot after this many invocations so
    /// clones stop sharing one ASLR layout (0 disables refresh).
    pub refresh_after_invocations: u64,
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy {
            reseed_rng_on_restore: true,
            refresh_after_invocations: 0,
        }
    }
}

/// Audit report for one installed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityAudit {
    /// Function name.
    pub function: String,
    /// Clones restored from the current snapshot so far.
    pub clones_from_current_snapshot: u64,
    /// Whether those clones share one address-space layout (true unless a
    /// refresh just happened and no clone was restored since).
    pub shared_aslr_layout: bool,
    /// Whether the guest RNG is reseeded per restore (mitigated).
    pub rng_reseeded_on_restore: bool,
    /// Snapshot regenerations performed for this function.
    pub refreshes: u64,
    /// Total virtual time spent on refreshes (maintenance, off the
    /// invocation path).
    pub refresh_time: Nanos,
}

impl SecurityAudit {
    /// Whether the configuration leaves a known entropy-sharing exposure.
    pub fn has_findings(&self) -> bool {
        (self.shared_aslr_layout && self.clones_from_current_snapshot > 1)
            || !self.rng_reseeded_on_restore
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(clones: u64, reseed: bool) -> SecurityAudit {
        SecurityAudit {
            function: "f".into(),
            clones_from_current_snapshot: clones,
            shared_aslr_layout: clones > 0,
            rng_reseeded_on_restore: reseed,
            refreshes: 0,
            refresh_time: Nanos::ZERO,
        }
    }

    #[test]
    fn single_clone_with_reseed_is_clean() {
        assert!(!audit(1, true).has_findings());
    }

    #[test]
    fn many_clones_share_aslr() {
        assert!(audit(10, true).has_findings());
    }

    #[test]
    fn missing_rng_reseed_is_a_finding() {
        assert!(audit(0, false).has_findings());
    }
}
