//! FIREWORKS — a fast, efficient, and safe serverless platform using
//! VM-level post-JIT snapshots (EuroSys '22 reproduction).
//!
//! The platform has two phases (paper Fig. 2):
//!
//! **Install** ([`FireworksPlatform::install`]): the code annotator
//! rewrites the user's function (`@jit` on every function, a JIT warm-up
//! driver, the snapshot request, and the parameter-fetch prologue); a
//! microVM is created and booted; the annotated program runs until it has
//! JIT-compiled the user code and requests a snapshot; the full VM —
//! guest memory, runtime state, and JIT code cache — is written to a
//! snapshot file.
//!
//! **Invoke** ([`FireworksPlatform::invoke`]): the invoker produces the
//! request arguments into a per-instance message-bus topic, sets up a
//! network namespace with NAT for the clone, restores the snapshot
//! (copy-on-write shared with every other clone), sets the instance id in
//! MMDS, and resumes the VM right after the snapshot point; the guest
//! fetches its identity and arguments and enters the user function —
//! already JIT-compiled, with no boot, load, or compile cost.
//!
//! The [`api`] module defines the [`api::Platform`] trait shared with the
//! `fireworks-baselines` crate, and [`host::GuestHost`] is the common
//! embedding that serves guest I/O against the sandbox's data path.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod audit;
pub mod cache;
pub mod cluster;
pub mod config;
pub mod elastic;
pub mod engine;
pub mod env;
pub mod fireworks;
pub mod host;
pub mod mesh;
pub mod symbols;

pub use api::{
    ConcurrentPlatform, FunctionSpec, InFlightToken, InstallReport, Invocation, InvokeRequest,
    Platform, PlatformError, SnapshotResidency, StartKind, StartMode,
};
pub use cluster::{
    Cluster, ClusterCompletion, ClusterConfig, ClusterReport, HostView, LeastLoaded,
    LocalityAffinity, RoundRobin, Route, Router,
};
pub use config::{
    PagingPolicy, PlatformConfig, PlatformConfigBuilder, RecoveryPolicy, SnapshotStorePolicy,
};
pub use elastic::{
    ElasticCluster, ElasticConfig, ElasticPolicy, ElasticReport, ElasticStats, HostPhase,
    ARCHIVE_HOST,
};
pub use engine::{
    run_concurrent, CompletionPolicy, EngineCompletion, EngineConfig, EngineReport, EngineRequest,
};
pub use env::PlatformEnv;
pub use fireworks::{FireworksPlatform, FunctionHealth, ResidentClone};
pub use mesh::{ChunkMesh, DonorInfo, SharedChunkMesh};
pub use symbols::{fid, FunctionId, HostId, IdMap, SymbolTable};
