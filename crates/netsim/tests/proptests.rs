//! Property tests for the clone-networking invariants.

use fireworks_netsim::{HostNetwork, Ip, Mac, NetError, ROOT_NS};
use fireworks_sim::cost::NetCosts;
use fireworks_sim::Clock;
use proptest::prelude::*;

const GUEST_IP: Ip = Ip::new(172, 16, 0, 2);
const GUEST_MAC: Mac = Mac([0x06, 0, 0, 0, 0, 0x2a]);

proptest! {
    /// Any number of identical snapshot clones coexist when each gets its
    /// own namespace, and every clone is reachable on its own external IP.
    #[test]
    fn n_clones_coexist_with_namespaces(n in 1usize..40) {
        let mut net = HostNetwork::new(Clock::new(), NetCosts::default());
        let mut externals = Vec::new();
        for _ in 0..n {
            let ns = net.create_namespace();
            net.attach_tap(ns, "tap0", GUEST_IP, GUEST_MAC).expect("tap");
            let ext = net.alloc_external_ip(ns).expect("ip");
            net.install_nat(ns, ext, GUEST_IP).expect("nat");
            externals.push((ns, ext));
        }
        // All external IPs are distinct, and each routes to its own clone.
        let mut seen = std::collections::HashSet::new();
        for (ns, ext) in &externals {
            prop_assert!(seen.insert(*ext));
            let d = net.deliver(*ext, 500).expect("delivers");
            prop_assert_eq!(d.ns, *ns);
            prop_assert_eq!(d.guest_ip, GUEST_IP);
        }
        prop_assert_eq!(net.namespace_count(), n + 1); // + root
    }

    /// Without namespaces, at most one clone can attach; every further
    /// attach conflicts regardless of how many are tried.
    #[test]
    fn clones_without_namespaces_conflict(n in 2usize..20) {
        let mut net = HostNetwork::new(Clock::new(), NetCosts::default());
        net.attach_tap(ROOT_NS, "tap0", GUEST_IP, GUEST_MAC).expect("first");
        for _ in 1..n {
            prop_assert!(matches!(
                net.attach_tap(ROOT_NS, "tap0", GUEST_IP, GUEST_MAC),
                Err(NetError::Conflict(_))
            ));
        }
    }

    /// Destroying namespaces releases their routes; the rest keep working.
    #[test]
    fn destroy_releases_routes(keep_mask in 0u32..256) {
        let mut net = HostNetwork::new(Clock::new(), NetCosts::default());
        let mut all = Vec::new();
        for _ in 0..8 {
            let ns = net.create_namespace();
            net.attach_tap(ns, "tap0", GUEST_IP, GUEST_MAC).expect("tap");
            let ext = net.alloc_external_ip(ns).expect("ip");
            net.install_nat(ns, ext, GUEST_IP).expect("nat");
            all.push((ns, ext));
        }
        for (i, (ns, _)) in all.iter().enumerate() {
            if keep_mask & (1 << i) == 0 {
                net.destroy_namespace(*ns).expect("destroys");
            }
        }
        for (i, (ns, ext)) in all.iter().enumerate() {
            let delivery = net.deliver(*ext, 100);
            if keep_mask & (1 << i) == 0 {
                prop_assert!(delivery.is_err(), "destroyed route must be gone");
            } else {
                prop_assert_eq!(delivery.expect("kept route works").ns, *ns);
            }
        }
    }
}
