//! Host networking for microVM snapshot clones (paper §3.5, Fig. 5).
//!
//! Every microVM restored from the same snapshot has the *same* guest IP,
//! MAC, and tap device name baked into its memory image. Running two such
//! clones on one host therefore conflicts — unless each clone's tap lives
//! in its own network namespace and is reached through NAT on a unique
//! external IP. This crate reproduces exactly that mechanism:
//!
//! - [`HostNetwork::attach_tap`] fails with [`NetError::Conflict`] when a
//!   duplicate tap name or guest IP appears *within one namespace*, and
//!   succeeds across namespaces;
//! - [`HostNetwork::install_nat`] maps a unique host-allocated external IP
//!   (DNAT in, SNAT out) to the namespace's guest IP;
//! - [`HostNetwork::deliver`] routes a packet to an external IP through
//!   the NAT into the right clone, charging per-packet costs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

use fireworks_obs::{cat, Obs};
use fireworks_sim::cost::NetCosts;
use fireworks_sim::fault::{FaultSite, SharedInjector};
use fireworks_sim::{Clock, Nanos};

/// Retransmission timeout before the first retry; doubles per retry.
pub const RETRANSMIT_TIMEOUT: Nanos = Nanos::from_micros(500);
/// Transmission attempts per packet (1 original + bounded retries).
pub const MAX_TRANSMITS: u32 = 4;
/// Segment size host-to-host bulk transfers are cut into (one loss /
/// retransmission unit — a jumbo-frame-sized chunk of the stream).
pub const TRANSFER_SEGMENT_BYTES: u64 = 64 * 1024;

/// A completed host-to-host bulk transfer (snapshot chunk shipping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReport {
    /// Payload bytes moved.
    pub bytes: u64,
    /// Segments the payload was cut into.
    pub segments: u64,
    /// Wire time: per-segment latency plus retransmission backoff.
    pub elapsed: Nanos,
    /// Segments that had to be retransmitted at least once.
    pub retransmits: u32,
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ip(pub u32);

impl Ip {
    /// Builds an address from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip {
        Ip(u32::from_be_bytes([a, b, c, d]))
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mac(pub [u8; 6]);

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// Identifier of a network namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NsId(u32);

/// Networking errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A tap name or address collides inside one namespace — the exact
    /// failure the paper's namespace design avoids.
    Conflict(String),
    /// Unknown namespace.
    NoSuchNamespace(NsId),
    /// No route to the destination.
    NoRoute(Ip),
    /// The namespace has no tap to deliver into.
    NoTap(NsId),
    /// The packet and every bounded retransmission of it were lost
    /// (injected loss).
    Lost(Ip),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Conflict(what) => write!(f, "network conflict: {what}"),
            NetError::NoSuchNamespace(id) => write!(f, "no such namespace {id:?}"),
            NetError::NoRoute(ip) => write!(f, "no route to {ip}"),
            NetError::NoTap(id) => write!(f, "namespace {id:?} has no tap device"),
            NetError::Lost(ip) => write!(f, "packet to {ip} lost after retransmissions"),
        }
    }
}

impl std::error::Error for NetError {}

#[derive(Debug, Clone)]
struct Tap {
    name: String,
    guest_ip: Ip,
    guest_mac: Mac,
}

#[derive(Debug, Default, Clone)]
struct Namespace {
    taps: Vec<Tap>,
    /// DNAT: external IP → guest IP (with implied reverse SNAT).
    nat: HashMap<Ip, Ip>,
}

/// A successful packet delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Namespace the packet was delivered into.
    pub ns: NsId,
    /// Guest IP after DNAT.
    pub guest_ip: Ip,
    /// Tap device the packet entered through.
    pub tap: String,
    /// One-way latency charged (per successful transmission).
    pub latency: Nanos,
    /// Lost transmissions that were retried before this delivery.
    pub retransmits: u32,
}

/// The host's network state: a root namespace plus per-clone namespaces.
#[derive(Debug)]
pub struct HostNetwork {
    clock: Clock,
    costs: NetCosts,
    namespaces: HashMap<u32, Namespace>,
    next_ns: u32,
    /// Externally visible IPs must be host-unique (they live in the root
    /// namespace).
    external: HashMap<Ip, NsId>,
    next_external: u32,
    injector: Option<SharedInjector>,
    obs: Option<Obs>,
}

/// The root namespace id (taps attached here behave like a host without
/// namespace isolation — used to demonstrate the conflict).
pub const ROOT_NS: NsId = NsId(0);

impl HostNetwork {
    /// Creates a host network with only the root namespace.
    pub fn new(clock: Clock, costs: NetCosts) -> Self {
        let mut namespaces = HashMap::new();
        namespaces.insert(0, Namespace::default());
        HostNetwork {
            clock,
            costs,
            namespaces,
            next_ns: 1,
            external: HashMap::new(),
            next_external: u32::from_be_bytes([10, 200, 0, 2]),
            injector: None,
            obs: None,
        }
    }

    /// Attaches a fault injector; [`HostNetwork::deliver`] then consults
    /// [`FaultSite::NetLoss`] per transmission attempt and retransmits
    /// lost packets with exponential backoff, up to [`MAX_TRANSMITS`].
    pub fn set_fault_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Attaches an observability plane; [`HostNetwork::deliver`] then
    /// counts `net.host.delivered` / `net.host.retransmits` /
    /// `net.host.drops` and records an instant event per retransmission
    /// or final drop.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Creates a fresh network namespace.
    pub fn create_namespace(&mut self) -> NsId {
        self.clock.advance(self.costs.netns_create);
        let id = self.next_ns;
        self.next_ns += 1;
        self.namespaces.insert(id, Namespace::default());
        NsId(id)
    }

    /// Destroys a namespace, releasing its external IPs.
    pub fn destroy_namespace(&mut self, ns: NsId) -> Result<(), NetError> {
        if ns == ROOT_NS {
            return Err(NetError::Conflict(
                "cannot destroy the root namespace".into(),
            ));
        }
        self.namespaces
            .remove(&ns.0)
            .ok_or(NetError::NoSuchNamespace(ns))?;
        self.external.retain(|_, owner| *owner != ns);
        Ok(())
    }

    /// Attaches a tap device inside a namespace. Fails on a duplicate tap
    /// name or guest IP *within the same namespace* — which is what
    /// happens when two clones of one snapshot share a namespace.
    pub fn attach_tap(
        &mut self,
        ns: NsId,
        name: &str,
        guest_ip: Ip,
        guest_mac: Mac,
    ) -> Result<(), NetError> {
        self.clock.advance(self.costs.tap_create);
        let namespace = self
            .namespaces
            .get_mut(&ns.0)
            .ok_or(NetError::NoSuchNamespace(ns))?;
        for tap in &namespace.taps {
            if tap.name == name {
                return Err(NetError::Conflict(format!(
                    "tap `{name}` already exists in this namespace"
                )));
            }
            if tap.guest_ip == guest_ip {
                return Err(NetError::Conflict(format!(
                    "guest IP {guest_ip} already bound in this namespace"
                )));
            }
            if tap.guest_mac == guest_mac {
                return Err(NetError::Conflict(format!(
                    "guest MAC {guest_mac} already bound in this namespace"
                )));
            }
        }
        namespace.taps.push(Tap {
            name: name.to_string(),
            guest_ip,
            guest_mac,
        });
        Ok(())
    }

    /// Allocates a host-unique external IP for a namespace.
    pub fn alloc_external_ip(&mut self, ns: NsId) -> Result<Ip, NetError> {
        if !self.namespaces.contains_key(&ns.0) {
            return Err(NetError::NoSuchNamespace(ns));
        }
        let ip = Ip(self.next_external);
        self.next_external += 1;
        self.external.insert(ip, ns);
        Ok(ip)
    }

    /// Installs a DNAT/SNAT pair: packets to `external` are translated to
    /// `guest_ip` inside `ns`, and replies are translated back.
    pub fn install_nat(&mut self, ns: NsId, external: Ip, guest_ip: Ip) -> Result<(), NetError> {
        self.clock.advance(self.costs.nat_rule_install);
        match self.external.get(&external) {
            Some(owner) if *owner == ns => {}
            Some(_) => {
                return Err(NetError::Conflict(format!(
                    "external IP {external} is owned by another namespace"
                )))
            }
            None => {
                // Allow explicit externally chosen IPs too, as long as
                // they're unique.
                self.external.insert(external, ns);
            }
        }
        let namespace = self
            .namespaces
            .get_mut(&ns.0)
            .ok_or(NetError::NoSuchNamespace(ns))?;
        namespace.nat.insert(external, guest_ip);
        Ok(())
    }

    /// Routes a packet addressed to `dst` (an external IP) into the owning
    /// namespace, applying DNAT, and charges per-packet latency.
    pub fn deliver(&self, dst: Ip, payload_bytes: u64) -> Result<Delivery, NetError> {
        let ns = *self.external.get(&dst).ok_or(NetError::NoRoute(dst))?;
        let namespace = self
            .namespaces
            .get(&ns.0)
            .ok_or(NetError::NoSuchNamespace(ns))?;
        let guest_ip = *namespace.nat.get(&dst).ok_or(NetError::NoRoute(dst))?;
        let tap = namespace
            .taps
            .iter()
            .find(|t| t.guest_ip == guest_ip)
            .ok_or(NetError::NoTap(ns))?;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let latency = self.packet_latency(payload_bytes, true);
            self.clock.advance(latency);
            let lost = self
                .injector
                .as_ref()
                .map(|inj| inj.borrow_mut().should_fail(FaultSite::NetLoss))
                .unwrap_or(false);
            if !lost {
                if let Some(obs) = &self.obs {
                    obs.metrics().inc("net.host.delivered", &[]);
                }
                return Ok(Delivery {
                    ns,
                    guest_ip,
                    tap: tap.name.clone(),
                    latency,
                    retransmits: attempts - 1,
                });
            }
            if attempts >= MAX_TRANSMITS {
                if let Some(obs) = &self.obs {
                    obs.metrics().inc("net.host.drops", &[]);
                    obs.recorder().instant_with(
                        format!("packet_lost:{dst}"),
                        cat::NET,
                        vec![("attempts", attempts.into())],
                    );
                }
                return Err(NetError::Lost(dst));
            }
            if let Some(obs) = &self.obs {
                obs.metrics().inc("net.host.retransmits", &[]);
                obs.recorder().instant_with(
                    format!("retransmit:{dst}"),
                    cat::NET,
                    vec![("attempt", attempts.into())],
                );
            }
            // The sender times out and retransmits, doubling the wait.
            self.clock
                .advance(RETRANSMIT_TIMEOUT * (1u64 << (attempts - 1)));
        }
    }

    /// Computes the cost of streaming `payload_bytes` to a peer host
    /// (`peer` is only used to label errors and events) *without*
    /// advancing the clock. The payload is cut into
    /// [`TRANSFER_SEGMENT_BYTES`] segments; each segment is subject to
    /// the same per-attempt [`FaultSite::NetLoss`] draws and doubling
    /// retransmission backoff as [`HostNetwork::deliver`], and a segment
    /// exhausting [`MAX_TRANSMITS`] fails the whole transfer.
    ///
    /// Callers that overlap the transfer with other work (the delta-fetch
    /// prefetch pipeline) charge the returned elapsed time themselves;
    /// [`HostNetwork::transfer`] is the blocking convenience that charges
    /// it immediately.
    pub fn transfer_cost(&self, peer: Ip, payload_bytes: u64) -> Result<TransferReport, NetError> {
        let segments = payload_bytes.div_ceil(TRANSFER_SEGMENT_BYTES).max(1);
        let mut elapsed = Nanos::ZERO;
        let mut retransmits = 0u32;
        for seg in 0..segments {
            let seg_bytes =
                if seg + 1 == segments && !payload_bytes.is_multiple_of(TRANSFER_SEGMENT_BYTES) {
                    payload_bytes % TRANSFER_SEGMENT_BYTES
                } else {
                    TRANSFER_SEGMENT_BYTES.min(payload_bytes.max(1))
                };
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                elapsed += self.packet_latency(seg_bytes, false);
                let lost = self
                    .injector
                    .as_ref()
                    .map(|inj| inj.borrow_mut().should_fail(FaultSite::NetLoss))
                    .unwrap_or(false);
                if !lost {
                    break;
                }
                if attempts >= MAX_TRANSMITS {
                    if let Some(obs) = &self.obs {
                        obs.metrics().inc("net.transfer.drops", &[]);
                        obs.recorder().instant_with(
                            format!("transfer_lost:{peer}"),
                            cat::NET,
                            vec![("segment", seg.into()), ("attempts", attempts.into())],
                        );
                    }
                    return Err(NetError::Lost(peer));
                }
                retransmits += 1;
                elapsed += RETRANSMIT_TIMEOUT * (1u64 << (attempts - 1));
            }
        }
        if let Some(obs) = &self.obs {
            obs.metrics().add("net.transfer.segments", &[], segments);
            obs.metrics().add("net.transfer.bytes", &[], payload_bytes);
            if retransmits > 0 {
                obs.metrics()
                    .add("net.transfer.retransmits", &[], u64::from(retransmits));
            }
        }
        Ok(TransferReport {
            bytes: payload_bytes,
            segments,
            elapsed,
            retransmits,
        })
    }

    /// Streams `payload_bytes` to a peer host, charging the full transfer
    /// time on the clock. See [`HostNetwork::transfer_cost`].
    pub fn transfer(&self, peer: Ip, payload_bytes: u64) -> Result<TransferReport, NetError> {
        let report = self.transfer_cost(peer, payload_bytes)?;
        self.clock.advance(report.elapsed);
        Ok(report)
    }

    /// Latency of one packet: base + size + (optionally) NAT translation.
    pub fn packet_latency(&self, payload_bytes: u64, through_nat: bool) -> Nanos {
        let kib = payload_bytes.div_ceil(1024);
        let mut t = self.costs.packet_base + self.costs.packet_per_kib * kib;
        if through_nat {
            t += self.costs.nat_translate;
        }
        t
    }

    /// Number of live namespaces (including root).
    pub fn namespace_count(&self) -> usize {
        self.namespaces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The guest address baked into every snapshot clone (A.A.A.A in the
    /// paper's Fig. 5).
    const GUEST_IP: Ip = Ip::new(172, 16, 0, 2);
    const GUEST_MAC: Mac = Mac([0x06, 0, 0, 0, 0, 0x2a]);

    fn net() -> HostNetwork {
        HostNetwork::new(Clock::new(), NetCosts::default())
    }

    #[test]
    fn clones_in_one_namespace_conflict() {
        let mut net = net();
        net.attach_tap(ROOT_NS, "tap0", GUEST_IP, GUEST_MAC)
            .expect("first clone attaches");
        let err = net.attach_tap(ROOT_NS, "tap0", GUEST_IP, GUEST_MAC);
        assert!(matches!(err, Err(NetError::Conflict(_))));
    }

    #[test]
    fn same_guest_ip_different_tap_name_still_conflicts() {
        let mut net = net();
        net.attach_tap(ROOT_NS, "tap0", GUEST_IP, GUEST_MAC)
            .expect("ok");
        let err = net.attach_tap(ROOT_NS, "tap1", GUEST_IP, Mac([6, 0, 0, 0, 0, 7]));
        assert!(matches!(err, Err(NetError::Conflict(_))));
    }

    #[test]
    fn namespaces_resolve_the_conflict() {
        // The paper's Fig. 5: identical guest addresses in separate
        // namespaces, reached via unique external IPs through NAT.
        let mut net = net();
        let ns1 = net.create_namespace();
        let ns2 = net.create_namespace();
        net.attach_tap(ns1, "tap0", GUEST_IP, GUEST_MAC)
            .expect("vm1");
        net.attach_tap(ns2, "tap0", GUEST_IP, GUEST_MAC)
            .expect("vm2");

        let ext1 = net.alloc_external_ip(ns1).expect("ip1");
        let ext2 = net.alloc_external_ip(ns2).expect("ip2");
        assert_ne!(ext1, ext2);
        net.install_nat(ns1, ext1, GUEST_IP).expect("nat1");
        net.install_nat(ns2, ext2, GUEST_IP).expect("nat2");

        let d1 = net.deliver(ext1, 500).expect("delivers to vm1");
        let d2 = net.deliver(ext2, 500).expect("delivers to vm2");
        assert_eq!(d1.ns, ns1);
        assert_eq!(d2.ns, ns2);
        assert_eq!(d1.guest_ip, GUEST_IP);
        assert_eq!(d2.guest_ip, GUEST_IP);
        assert_eq!(d1.tap, "tap0");
    }

    #[test]
    fn external_ips_are_host_unique() {
        let mut net = net();
        let ns1 = net.create_namespace();
        let ns2 = net.create_namespace();
        let ext = net.alloc_external_ip(ns1).expect("ip");
        let err = net.install_nat(ns2, ext, GUEST_IP);
        assert!(matches!(err, Err(NetError::Conflict(_))));
    }

    #[test]
    fn delivery_needs_route_and_tap() {
        let mut net = net();
        assert!(matches!(
            net.deliver(Ip::new(1, 2, 3, 4), 100),
            Err(NetError::NoRoute(_))
        ));
        let ns = net.create_namespace();
        let ext = net.alloc_external_ip(ns).expect("ip");
        net.install_nat(ns, ext, GUEST_IP).expect("nat");
        // NAT installed but no tap attached yet.
        assert!(matches!(net.deliver(ext, 100), Err(NetError::NoTap(_))));
    }

    #[test]
    fn destroy_releases_external_ips() {
        let mut net = net();
        let ns = net.create_namespace();
        let ext = net.alloc_external_ip(ns).expect("ip");
        net.install_nat(ns, ext, GUEST_IP).expect("nat");
        net.destroy_namespace(ns).expect("destroys");
        assert!(matches!(net.deliver(ext, 100), Err(NetError::NoRoute(_))));
        assert!(net.destroy_namespace(ROOT_NS).is_err());
    }

    #[test]
    fn packet_latency_scales_with_size_and_nat() {
        let net = net();
        let small = net.packet_latency(579, true);
        let big = net.packet_latency(64 * 1024, true);
        let no_nat = net.packet_latency(579, false);
        assert!(big > small);
        assert!(no_nat < small);
    }

    #[test]
    fn namespace_setup_charges_time() {
        let clock = Clock::new();
        let mut net = HostNetwork::new(clock.clone(), NetCosts::default());
        let before = clock.now();
        let ns = net.create_namespace();
        net.attach_tap(ns, "tap0", GUEST_IP, GUEST_MAC).expect("ok");
        let ext = net.alloc_external_ip(ns).expect("ip");
        net.install_nat(ns, ext, GUEST_IP).expect("nat");
        let elapsed = clock.now() - before;
        let costs = NetCosts::default();
        assert_eq!(
            elapsed,
            costs.netns_create + costs.tap_create + costs.nat_rule_install
        );
    }

    fn routed_net(clock: Clock) -> (HostNetwork, Ip) {
        let mut net = HostNetwork::new(clock, NetCosts::default());
        let ns = net.create_namespace();
        net.attach_tap(ns, "tap0", GUEST_IP, GUEST_MAC).expect("ok");
        let ext = net.alloc_external_ip(ns).expect("ip");
        net.install_nat(ns, ext, GUEST_IP).expect("nat");
        (net, ext)
    }

    #[test]
    fn lost_packets_are_retransmitted_with_backoff() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let clock = Clock::new();
        let (mut net, ext) = routed_net(clock.clone());
        // Lose the first two transmissions; the third goes through.
        net.set_fault_injector(fault::shared(FaultInjector::new(
            FaultPlan::new(3)
                .nth(FaultSite::NetLoss, 1)
                .nth(FaultSite::NetLoss, 2),
        )));
        let before = clock.now();
        let d = net.deliver(ext, 500).expect("third attempt delivers");
        assert_eq!(d.retransmits, 2);
        let elapsed = clock.now() - before;
        // 3 transmissions + two doubling backoffs.
        let expected = d.latency * 3 + RETRANSMIT_TIMEOUT + RETRANSMIT_TIMEOUT * 2;
        assert_eq!(elapsed, expected);
    }

    #[test]
    fn loss_on_every_attempt_gives_up_bounded() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let clock = Clock::new();
        let (mut net, ext) = routed_net(clock.clone());
        let inj = fault::shared(FaultInjector::new(FaultPlan::uniform(1, 1.0)));
        net.set_fault_injector(inj.clone());
        let err = net.deliver(ext, 100).expect_err("all attempts lost");
        assert_eq!(err, NetError::Lost(ext));
        assert_eq!(
            inj.borrow().injected_at(FaultSite::NetLoss),
            MAX_TRANSMITS as usize,
            "exactly MAX_TRANSMITS attempts were made"
        );
    }

    #[test]
    fn transfer_cost_scales_with_bytes_and_charges_nothing() {
        let clock = Clock::new();
        let net = HostNetwork::new(clock.clone(), NetCosts::default());
        let peer = Ip::new(10, 42, 0, 1);
        let before = clock.now();
        let small = net.transfer_cost(peer, 64 * 1024).expect("ok");
        let big = net.transfer_cost(peer, 4 << 20).expect("ok");
        assert_eq!(clock.now(), before, "cost computation is clock-neutral");
        assert_eq!(small.segments, 1);
        assert_eq!(big.segments, 64);
        assert!(big.elapsed > small.elapsed * 32);
        // The blocking variant charges the same elapsed time.
        let charged = net.transfer(peer, 4 << 20).expect("ok");
        assert_eq!(charged.elapsed, big.elapsed);
        assert_eq!(clock.now() - before, big.elapsed);
    }

    #[test]
    fn transfer_retransmits_lost_segments_with_backoff() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let clock = Clock::new();
        let mut net = HostNetwork::new(clock.clone(), NetCosts::default());
        let peer = Ip::new(10, 42, 0, 2);
        let clean = net.transfer_cost(peer, 128 * 1024).expect("ok");
        net.set_fault_injector(fault::shared(FaultInjector::new(
            FaultPlan::new(5).nth(FaultSite::NetLoss, 1),
        )));
        let lossy = net.transfer_cost(peer, 128 * 1024).expect("ok");
        assert_eq!(lossy.retransmits, 1);
        let seg_latency = net.packet_latency(TRANSFER_SEGMENT_BYTES, false);
        assert_eq!(
            lossy.elapsed,
            clean.elapsed + seg_latency + RETRANSMIT_TIMEOUT
        );
    }

    #[test]
    fn transfer_gives_up_when_a_segment_exhausts_retries() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let mut net = net();
        let peer = Ip::new(10, 42, 0, 3);
        net.set_fault_injector(fault::shared(FaultInjector::new(FaultPlan::uniform(
            1, 1.0,
        ))));
        let err = net.transfer_cost(peer, 256 * 1024).expect_err("lost");
        assert_eq!(err, NetError::Lost(peer));
    }

    #[test]
    fn rate_zero_injector_changes_nothing() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let clock = Clock::new();
        let (plain, ext_a) = routed_net(clock.clone());
        let (mut armed, ext_b) = routed_net(clock.clone());
        armed.set_fault_injector(fault::shared(FaultInjector::new(FaultPlan::uniform(
            9, 0.0,
        ))));
        let d_plain = plain.deliver(ext_a, 500).expect("ok");
        let d_armed = armed.deliver(ext_b, 500).expect("ok");
        assert_eq!(d_plain.latency, d_armed.latency);
        assert_eq!(d_armed.retransmits, 0);
    }
}
