//! The content-addressed snapshot chunk store.
//!
//! REAP-style observation: most snapshot bytes are shared across
//! functions (OS image, runtime, JIT scaffolding), so storing each
//! distinct chunk once — keyed by [`ChunkHash`] — collapses a fleet of
//! per-function snapshots into a much smaller set of unique bytes, and a
//! host that already holds a snapshot's common chunks only needs the
//! *missing* ones shipped to reconstruct it.
//!
//! One `ChunkStore` serves one host: canonical chunk frames are pinned in
//! that host's frame table, reference-counted by the manifests ingested,
//! and freed when the last manifest referencing them is released
//! (cache eviction). All state is `BTreeMap`-ordered so walks are
//! byte-deterministic.

use std::collections::BTreeMap;

use fireworks_guestmem::{ChunkHash, FrameId, HostMemory, SnapshotFile, SnapshotManifest};
use fireworks_obs::Obs;

/// One stored chunk: the canonical (guest page, host frame) run plus its
/// manifest reference count.
#[derive(Debug)]
struct ChunkEntry {
    /// Canonical frames, pinned in the store's host frame table.
    frames: Vec<(usize, FrameId)>,
    /// Bytes this chunk covers.
    bytes: u64,
    /// How many ingested manifests reference this chunk.
    refs: u32,
}

/// Aggregate chunk-store counters, for tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStoreStats {
    /// Distinct chunks currently stored.
    pub unique_chunks: usize,
    /// Bytes of distinct chunks currently stored (what the host pays).
    pub unique_bytes: u64,
    /// Bytes all ingested manifests describe (what flat storage would pay).
    pub logical_bytes: u64,
    /// Chunk ingests that hit an already-stored chunk.
    pub dedup_hits: u64,
    /// Chunk ingests that stored a new chunk.
    pub inserts: u64,
}

/// A per-host content-addressed chunk store.
///
/// Ingesting a snapshot registers its manifest and stores each chunk
/// once; re-ingesting chunks already present only bumps reference
/// counts. [`ChunkStore::missing_bytes`] tells a router (or a delta
/// fetcher) exactly how far this host is from holding a snapshot.
#[derive(Debug)]
pub struct ChunkStore {
    host: HostMemory,
    chunks: BTreeMap<ChunkHash, ChunkEntry>,
    dedup_hits: u64,
    inserts: u64,
    obs: Option<Obs>,
}

impl ChunkStore {
    /// Creates an empty store pinning canonical frames on `host`.
    pub fn new(host: HostMemory) -> Self {
        ChunkStore {
            host,
            chunks: BTreeMap::new(),
            dedup_hits: 0,
            inserts: 0,
            obs: None,
        }
    }

    /// Attaches an observability plane; ingest/release then record chunk
    /// hit and dedup metrics.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    fn count(&self, name: &'static str, delta: u64) {
        if let Some(obs) = &self.obs {
            obs.metrics().add(name, &[], delta);
        }
    }

    fn record_gauges(&self) {
        if let Some(obs) = &self.obs {
            let stats = self.stats();
            obs.metrics()
                .gauge_set("store.chunks.unique_bytes", &[], stats.unique_bytes as i64);
            obs.metrics().gauge_set(
                "store.chunks.logical_bytes",
                &[],
                stats.logical_bytes as i64,
            );
        }
    }

    /// Ingests a captured snapshot at `chunk_pages` granularity: registers
    /// its manifest, stores every chunk not yet present (pinning the
    /// snapshot's frames as the canonical copy), and bumps reference
    /// counts on chunks already stored.
    ///
    /// Returns the manifest together with a *canonical frame list* — the
    /// snapshot's page layout remapped onto the store's canonical frames,
    /// with one owner reference per frame held for the caller. Feeding
    /// that list to [`SnapshotFile::from_mapped`] yields a snapshot
    /// backed entirely by store chunks, so dropping the originally
    /// captured file physically deduplicates host memory.
    pub fn ingest_snapshot(
        &mut self,
        snap: &SnapshotFile,
        chunk_pages: usize,
    ) -> (SnapshotManifest, Vec<(usize, FrameId)>) {
        let manifest = snap.manifest(chunk_pages);
        let mut canonical = Vec::with_capacity(snap.frames().len());
        let mut start = 0usize;
        let mut hits = 0u64;
        let mut inserts = 0u64;
        for chunk in &manifest.chunks {
            let run = &snap.frames()[start..start + chunk.pages];
            match self.chunks.entry(chunk.hash) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().refs += 1;
                    hits += 1;
                    canonical.extend_from_slice(&e.get().frames);
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    for (_, frame) in run {
                        self.host.pin(*frame);
                    }
                    v.insert(ChunkEntry {
                        frames: run.to_vec(),
                        bytes: chunk.bytes,
                        refs: 1,
                    });
                    inserts += 1;
                    canonical.extend_from_slice(run);
                }
            }
            start += chunk.pages;
        }
        self.dedup_hits += hits;
        self.inserts += inserts;
        if hits > 0 {
            self.count("store.chunks.dedup_hits", hits);
        }
        if inserts > 0 {
            self.count("store.chunks.inserts", inserts);
        }
        for (_, frame) in &canonical {
            self.host.retain(*frame);
        }
        self.record_gauges();
        (manifest, canonical)
    }

    /// Whether a chunk is present.
    pub fn has_chunk(&self, hash: ChunkHash) -> bool {
        self.chunks.contains_key(&hash)
    }

    /// Adds one manifest reference to an already-present chunk (the
    /// delta-fetch destination does this for the chunks it did *not*
    /// need shipped). Returns `false` — and changes nothing — when the
    /// chunk is absent.
    pub fn retain_chunk(&mut self, hash: ChunkHash) -> bool {
        match self.chunks.get_mut(&hash) {
            Some(e) => {
                e.refs += 1;
                self.dedup_hits += 1;
                self.count("store.chunks.dedup_hits", 1);
                true
            }
            None => false,
        }
    }

    /// Indices (into `manifest.chunks`) of the chunks this store lacks.
    pub fn missing_chunks(&self, manifest: &SnapshotManifest) -> Vec<usize> {
        manifest
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| !self.chunks.contains_key(&c.hash))
            .map(|(i, _)| i)
            .collect()
    }

    /// Bytes of `manifest` this store does not hold — the router's
    /// transfer-cost signal and the delta fetcher's shopping list.
    pub fn missing_bytes(&self, manifest: &SnapshotManifest) -> u64 {
        manifest
            .chunks
            .iter()
            .filter(|c| !self.chunks.contains_key(&c.hash))
            .map(|c| c.bytes)
            .sum()
    }

    /// The canonical frame run stored for `hash` (the transfer source
    /// reads these frames to ship the chunk).
    pub fn chunk_frames(&self, hash: ChunkHash) -> Option<&[(usize, FrameId)]> {
        self.chunks.get(&hash).map(|e| e.frames.as_slice())
    }

    /// Stores a chunk received from a peer. `frames` carry one owner
    /// reference each (e.g. fresh from
    /// [`HostMemory::clone_frame_from`]); the store converts those into
    /// canonical pins. If the chunk raced in by another path, the
    /// caller's copies are simply released and the stored copy gains a
    /// reference.
    pub fn ingest_remote_chunk(&mut self, hash: ChunkHash, frames: Vec<(usize, FrameId)>) {
        let hit = match self.chunks.entry(hash) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().refs += 1;
                for (_, frame) in &frames {
                    self.host.release(*frame);
                }
                true
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                let bytes = (frames.len() * fireworks_guestmem::PAGE_SIZE) as u64;
                for (_, frame) in &frames {
                    // Convert the caller's owner reference into a pin.
                    self.host.pin(*frame);
                    self.host.release(*frame);
                }
                v.insert(ChunkEntry {
                    frames,
                    bytes,
                    refs: 1,
                });
                false
            }
        };
        if hit {
            self.dedup_hits += 1;
            self.count("store.chunks.dedup_hits", 1);
        } else {
            self.inserts += 1;
            self.count("store.chunks.inserts", 1);
        }
        self.record_gauges();
    }

    /// Assembles the full frame list for a registered manifest from
    /// stored chunks, giving the caller one owner reference per frame
    /// (for [`SnapshotFile::from_mapped`]). Returns `None` if any chunk
    /// is still missing.
    pub fn claim_manifest_frames(
        &self,
        manifest: &SnapshotManifest,
    ) -> Option<Vec<(usize, FrameId)>> {
        let mut frames = Vec::with_capacity(manifest.total_pages());
        for chunk in &manifest.chunks {
            frames.extend_from_slice(self.chunks.get(&chunk.hash)?.frames.as_slice());
        }
        for (_, frame) in &frames {
            self.host.retain(*frame);
        }
        Some(frames)
    }

    /// Releases one manifest's hold on its chunks (cache eviction).
    /// Chunks whose reference count reaches zero are unpinned and leave
    /// the store; bytes still mapped by live clones stay resident until
    /// those clones exit, exactly like page-cache eviction under mmap.
    pub fn release_manifest(&mut self, manifest: &SnapshotManifest) {
        for chunk in &manifest.chunks {
            let Some(e) = self.chunks.get_mut(&chunk.hash) else {
                continue;
            };
            e.refs -= 1;
            if e.refs == 0 {
                for (_, frame) in &e.frames {
                    self.host.unpin(*frame);
                }
                self.chunks.remove(&chunk.hash);
                self.count("store.chunks.evictions", 1);
            }
        }
        self.record_gauges();
    }

    /// Bytes of distinct chunks currently stored — what this host's
    /// cache budget is charged.
    pub fn unique_bytes(&self) -> u64 {
        self.chunks.values().map(|e| e.bytes).sum()
    }

    /// Bytes all ingested manifests describe (flat-storage cost).
    pub fn logical_bytes(&self) -> u64 {
        self.chunks
            .values()
            .map(|e| e.bytes * u64::from(e.refs))
            .sum()
    }

    /// `logical / unique` — how many times over the store's bytes are
    /// shared. 1.0 means no sharing.
    pub fn dedup_ratio(&self) -> f64 {
        let unique = self.unique_bytes();
        if unique == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / unique as f64
    }

    /// The manifest reference count held on `hash`, or `None` when the
    /// chunk is absent. Invariant auditors compare this against the
    /// number of live manifests that reference the chunk.
    pub fn chunk_refs(&self, hash: ChunkHash) -> Option<u32> {
        self.chunks.get(&hash).map(|e| e.refs)
    }

    /// Every stored chunk's `(hash, refs)` pair in hash order — the
    /// store's full reference-count ledger, for consistency audits.
    /// `BTreeMap` order makes the walk byte-deterministic.
    pub fn chunk_refcounts(&self) -> Vec<(ChunkHash, u32)> {
        self.chunks.iter().map(|(h, e)| (*h, e.refs)).collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ChunkStoreStats {
        ChunkStoreStats {
            unique_chunks: self.chunks.len(),
            unique_bytes: self.unique_bytes(),
            logical_bytes: self.logical_bytes(),
            dedup_hits: self.dedup_hits,
            inserts: self.inserts,
        }
    }

    /// The host frame table canonical chunks are pinned on.
    pub fn host(&self) -> &HostMemory {
        &self.host
    }
}

impl Drop for ChunkStore {
    fn drop(&mut self) {
        for e in self.chunks.values() {
            for (_, frame) in &e.frames {
                self.host.unpin(*frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_guestmem::{AddressSpace, PAGE_SIZE};
    use fireworks_sim::Clock;

    fn host() -> HostMemory {
        HostMemory::new(Clock::new(), 1 << 30, 60)
    }

    fn snapshot_with(host: &HostMemory, seed: u8, pages: usize) -> SnapshotFile {
        let mut s = AddressSpace::new(host.clone(), 1 << 20);
        for p in 0..pages {
            s.write(p as u64 * PAGE_SIZE as u64, &[seed, p as u8]);
        }
        SnapshotFile::capture(&s, Vec::new())
    }

    #[test]
    fn identical_snapshots_store_bytes_once() {
        let h = host();
        let mut store = ChunkStore::new(h.clone());
        let a = snapshot_with(&h, 1, 8);
        let b = snapshot_with(&h, 1, 8);
        let (ma, _fa) = store.ingest_snapshot(&a, 4);
        let (mb, _fb) = store.ingest_snapshot(&b, 4);
        assert_eq!(ma.chunks, mb.chunks, "same content, same chunk hashes");
        let stats = store.stats();
        assert_eq!(stats.unique_chunks, 2);
        assert_eq!(stats.dedup_hits, 2);
        assert_eq!(stats.logical_bytes, 2 * stats.unique_bytes);
        assert!(store.dedup_ratio() > 1.9);
        // Clean up claimed references so Drop's pin audit balances.
        for (_, f) in _fa.iter().chain(_fb.iter()) {
            h.release(*f);
        }
    }

    #[test]
    fn canonical_remap_physically_dedups_host_memory() {
        let h = host();
        let mut store = ChunkStore::new(h.clone());
        let a = snapshot_with(&h, 7, 8);
        let b = snapshot_with(&h, 7, 8);
        let live_before = h.live_frames();
        let (_, frames_b) = store.ingest_snapshot(&b, 4);
        let rebuilt_b = SnapshotFile::from_mapped(&h, b.size_bytes(), frames_b, Vec::new());
        assert_eq!(rebuilt_b.id(), b.id());
        let (_, frames_a) = store.ingest_snapshot(&a, 4);
        let rebuilt_a = SnapshotFile::from_mapped(&h, a.size_bytes(), frames_a, Vec::new());
        assert_eq!(rebuilt_a.id(), a.id());
        // Drop the originals: only one physical copy remains (b's frames,
        // the canonical store copy), so live frames shrink by a's 8.
        drop(a);
        drop(b);
        assert_eq!(h.live_frames(), live_before - 8);
        drop(rebuilt_a);
        drop(rebuilt_b);
    }

    #[test]
    fn missing_bytes_shrinks_as_remote_chunks_arrive() {
        let h_src = host();
        let h_dst = host();
        let mut src = ChunkStore::new(h_src.clone());
        let mut dst = ChunkStore::new(h_dst.clone());
        let snap = snapshot_with(&h_src, 3, 8);
        let (manifest, claimed) = src.ingest_snapshot(&snap, 4);
        for (_, f) in &claimed {
            h_src.release(*f);
        }

        assert_eq!(dst.missing_bytes(&manifest), manifest.total_bytes());
        assert_eq!(dst.missing_chunks(&manifest), vec![0, 1]);
        assert!(dst.claim_manifest_frames(&manifest).is_none());

        for idx in dst.missing_chunks(&manifest) {
            let hash = manifest.chunks[idx].hash;
            let run = src.chunk_frames(hash).expect("source holds chunk");
            let copied: Vec<(usize, FrameId)> = run
                .iter()
                .map(|(page, f)| (*page, h_dst.clone_frame_from(&h_src, *f)))
                .collect();
            dst.ingest_remote_chunk(hash, copied);
        }
        assert_eq!(dst.missing_bytes(&manifest), 0);

        let frames = dst.claim_manifest_frames(&manifest).expect("complete");
        let rebuilt = SnapshotFile::from_mapped(
            &h_dst,
            manifest.size_bytes,
            frames,
            manifest.device_state.clone(),
        );
        assert_eq!(rebuilt.id(), manifest.id, "delta fetch is faithful");
        assert!(rebuilt.verify().is_ok());
    }

    #[test]
    fn release_manifest_evicts_unreferenced_chunks() {
        let h = host();
        let mut store = ChunkStore::new(h.clone());
        let a = snapshot_with(&h, 1, 8);
        let b = snapshot_with(&h, 2, 8);
        let (ma, fa) = store.ingest_snapshot(&a, 4);
        let (mb, fb) = store.ingest_snapshot(&b, 4);
        for (_, f) in fa.iter().chain(fb.iter()) {
            h.release(*f);
        }
        assert_eq!(store.stats().unique_chunks, 4);
        store.release_manifest(&ma);
        assert_eq!(store.stats().unique_chunks, 2, "a's chunks evicted");
        assert_eq!(store.missing_bytes(&mb), 0, "b untouched");
        assert_eq!(store.missing_bytes(&ma), ma.total_bytes());
        store.release_manifest(&mb);
        assert_eq!(store.stats().unique_chunks, 0);
        assert_eq!(store.unique_bytes(), 0);
    }

    #[test]
    fn refcount_ledger_tracks_ingests_and_releases() {
        let h = host();
        let mut store = ChunkStore::new(h.clone());
        let a = snapshot_with(&h, 1, 8);
        let b = snapshot_with(&h, 1, 8);
        let (ma, fa) = store.ingest_snapshot(&a, 4);
        let (_, fb) = store.ingest_snapshot(&b, 4);
        for (_, f) in fa.iter().chain(fb.iter()) {
            h.release(*f);
        }
        let ledger = store.chunk_refcounts();
        assert_eq!(ledger.len(), 2);
        assert!(ledger.iter().all(|(_, refs)| *refs == 2));
        assert_eq!(store.chunk_refs(ma.chunks[0].hash), Some(2));
        store.release_manifest(&ma);
        assert!(store.chunk_refcounts().iter().all(|(_, r)| *r == 1));
        store.release_manifest(&ma);
        assert!(store.chunk_refcounts().is_empty());
        assert_eq!(store.chunk_refs(ma.chunks[0].hash), None);
    }

    #[test]
    fn double_ingest_of_remote_chunk_releases_duplicate_copy() {
        let h = host();
        let mut store = ChunkStore::new(h.clone());
        let snap = snapshot_with(&h, 5, 4);
        let (manifest, claimed) = store.ingest_snapshot(&snap, 4);
        for (_, f) in &claimed {
            h.release(*f);
        }
        let hash = manifest.chunks[0].hash;
        let live = h.live_frames();
        let copies: Vec<(usize, FrameId)> = store
            .chunk_frames(hash)
            .unwrap()
            .to_vec()
            .iter()
            .map(|(p, f)| (*p, h.clone_frame_from(&h, *f)))
            .collect();
        store.ingest_remote_chunk(hash, copies);
        assert_eq!(h.live_frames(), live, "duplicate copies freed");
    }
}
