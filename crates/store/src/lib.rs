//! A CouchDB-style document store.
//!
//! The paper's real-world applications (§5.3) — Alexa Skills and Data
//! Analysis — store reminders, device states, and wage records in CouchDB,
//! and the Data Analysis chain is *triggered by a database update* (the
//! dashed box in Fig. 8(b)). This crate provides the pieces those apps
//! use: revisioned documents with conflict detection, simple field
//! queries, and a monotonic change feed that the platform's Cloud trigger
//! polls.
//!
//! Documents are [`fireworks_lang::Value`]s and are deep-cloned at the
//! put/get boundary — the store is a separate service and must never alias
//! guest memory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chunk;

pub use chunk::{ChunkStore, ChunkStoreStats};

use std::collections::BTreeMap;
use std::fmt;

use fireworks_lang::Value;
use fireworks_obs::{cat, Obs};
use fireworks_sim::fault::{FaultSite, SharedInjector};
use fireworks_sim::{Clock, Nanos};

/// Store operation costs (the service-side cost; the network hop to reach
/// the store is charged by the caller's sandbox path).
#[derive(Debug, Clone)]
pub struct StoreCosts {
    /// One document write.
    pub put: Nanos,
    /// One document read.
    pub get: Nanos,
    /// One field-equality scan, per document scanned.
    pub scan_per_doc: Nanos,
    /// One change-feed read.
    pub changes: Nanos,
}

impl Default for StoreCosts {
    fn default() -> Self {
        StoreCosts {
            put: Nanos::from_micros(350),
            get: Nanos::from_micros(180),
            scan_per_doc: Nanos::from_micros(6),
            changes: Nanos::from_micros(120),
        }
    }
}

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The database does not exist.
    NoSuchDatabase(String),
    /// The document does not exist.
    NotFound {
        /// Database name.
        db: String,
        /// Document id.
        id: String,
    },
    /// A put supplied a stale revision.
    Conflict {
        /// Document id.
        id: String,
        /// Revision the caller supplied.
        expected: u64,
        /// Revision currently stored.
        actual: u64,
    },
    /// The store is transiently unavailable (injected outage); the
    /// request may be retried.
    Unavailable,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchDatabase(db) => write!(f, "no such database `{db}`"),
            StoreError::NotFound { db, id } => write!(f, "document `{id}` not found in `{db}`"),
            StoreError::Conflict {
                id,
                expected,
                actual,
            } => write!(
                f,
                "revision conflict on `{id}`: expected {expected}, is {actual}"
            ),
            StoreError::Unavailable => write!(f, "document store temporarily unavailable"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A stored document.
#[derive(Debug, Clone)]
pub struct Document {
    /// Document id.
    pub id: String,
    /// Monotonic revision (1 on first write).
    pub rev: u64,
    /// Document body.
    pub body: Value,
}

/// One entry of the change feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Change {
    /// Monotonic database sequence number (1-based).
    pub seq: u64,
    /// Document id that changed.
    pub id: String,
    /// New revision.
    pub rev: u64,
    /// Whether the change was a deletion.
    pub deleted: bool,
}

#[derive(Debug, Default)]
struct Database {
    docs: BTreeMap<String, Document>,
    changes: Vec<Change>,
}

impl Database {
    fn record_change(&mut self, id: &str, rev: u64, deleted: bool) {
        let seq = self.changes.len() as u64 + 1;
        self.changes.push(Change {
            seq,
            id: id.to_string(),
            rev,
            deleted,
        });
    }
}

/// The document store service.
#[derive(Debug)]
pub struct DocumentStore {
    clock: Clock,
    costs: StoreCosts,
    databases: BTreeMap<String, Database>,
    injector: Option<SharedInjector>,
    obs: Option<Obs>,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new(clock: Clock, costs: StoreCosts) -> Self {
        DocumentStore {
            clock,
            costs,
            databases: BTreeMap::new(),
            injector: None,
            obs: None,
        }
    }

    /// Attaches a fault injector; every request then consults
    /// [`FaultSite::StoreUnavailable`] and may fail with
    /// [`StoreError::Unavailable`].
    pub fn set_fault_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Attaches an observability plane; every request is then counted as
    /// `store.docstore.requests{op=...}` and injected outages become
    /// `store.docstore.outages` plus an instant event.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Simulated outage check, performed at the front of every request.
    /// `op` names the request kind for the per-operation request counter.
    fn check_available(&self, op: &'static str) -> Result<(), StoreError> {
        if let Some(obs) = &self.obs {
            obs.metrics().inc("store.docstore.requests", &[("op", op)]);
        }
        let down = self
            .injector
            .as_ref()
            .map(|inj| inj.borrow_mut().should_fail(FaultSite::StoreUnavailable))
            .unwrap_or(false);
        if down {
            if let Some(obs) = &self.obs {
                obs.metrics().inc("store.docstore.outages", &[]);
                obs.recorder()
                    .instant_with("store_outage", cat::STORE, vec![("op", op.into())]);
            }
            Err(StoreError::Unavailable)
        } else {
            Ok(())
        }
    }

    /// Creates a database (idempotent).
    pub fn create_db(&mut self, name: &str) {
        self.databases.entry(name.to_string()).or_default();
    }

    /// Whether a database exists.
    pub fn has_db(&self, name: &str) -> bool {
        self.databases.contains_key(name)
    }

    fn db_mut(&mut self, name: &str) -> Result<&mut Database, StoreError> {
        self.databases
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchDatabase(name.to_string()))
    }

    fn db(&self, name: &str) -> Result<&Database, StoreError> {
        self.databases
            .get(name)
            .ok_or_else(|| StoreError::NoSuchDatabase(name.to_string()))
    }

    /// Writes a document, creating the database on demand. Returns the new
    /// revision. If `expected_rev` is `Some`, the write fails with
    /// [`StoreError::Conflict`] unless it matches the current revision
    /// (CouchDB MVCC semantics).
    pub fn put(
        &mut self,
        db: &str,
        id: &str,
        body: &Value,
        expected_rev: Option<u64>,
    ) -> Result<u64, StoreError> {
        self.check_available("put")?;
        self.clock.advance(self.costs.put);
        self.create_db(db);
        let database = self.db_mut(db)?;
        let current = database.docs.get(id).map(|d| d.rev).unwrap_or(0);
        if let Some(expected) = expected_rev {
            if expected != current {
                return Err(StoreError::Conflict {
                    id: id.to_string(),
                    expected,
                    actual: current,
                });
            }
        }
        let rev = current + 1;
        database.docs.insert(
            id.to_string(),
            Document {
                id: id.to_string(),
                rev,
                body: body.deep_clone(),
            },
        );
        database.record_change(id, rev, false);
        Ok(rev)
    }

    /// Reads a document.
    pub fn get(&self, db: &str, id: &str) -> Result<Document, StoreError> {
        self.check_available("get")?;
        self.clock.advance(self.costs.get);
        let database = self.db(db)?;
        let doc = database.docs.get(id).ok_or_else(|| StoreError::NotFound {
            db: db.to_string(),
            id: id.to_string(),
        })?;
        Ok(Document {
            id: doc.id.clone(),
            rev: doc.rev,
            body: doc.body.deep_clone(),
        })
    }

    /// Deletes a document, recording a deletion change.
    pub fn delete(&mut self, db: &str, id: &str) -> Result<(), StoreError> {
        self.check_available("delete")?;
        self.clock.advance(self.costs.put);
        let database = self.db_mut(db)?;
        let doc = database
            .docs
            .remove(id)
            .ok_or_else(|| StoreError::NotFound {
                db: db.to_string(),
                id: id.to_string(),
            })?;
        database.record_change(id, doc.rev + 1, true);
        Ok(())
    }

    /// Finds documents whose body is a map with `field == value`
    /// (structural equality). A linear scan, like an unindexed Mango
    /// query.
    pub fn find(&self, db: &str, field: &str, value: &Value) -> Result<Vec<Document>, StoreError> {
        self.check_available("find")?;
        let database = self.db(db)?;
        self.clock
            .advance(self.costs.scan_per_doc * database.docs.len() as u64);
        let mut out = Vec::new();
        for doc in database.docs.values() {
            if let Value::Map(m) = &doc.body {
                if let Some(v) = m.borrow().get(field) {
                    if v.eq_value(value) {
                        out.push(Document {
                            id: doc.id.clone(),
                            rev: doc.rev,
                            body: doc.body.deep_clone(),
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// All document ids in a database.
    pub fn all_ids(&self, db: &str) -> Result<Vec<String>, StoreError> {
        let database = self.db(db)?;
        self.clock
            .advance(self.costs.scan_per_doc * database.docs.len() as u64);
        Ok(database.docs.keys().cloned().collect())
    }

    /// Changes with sequence number greater than `since` — the feed the
    /// Cloud trigger polls to start the Data-Analysis chain.
    pub fn changes_since(&self, db: &str, since: u64) -> Result<Vec<Change>, StoreError> {
        self.check_available("changes")?;
        self.clock.advance(self.costs.changes);
        let database = self.db(db)?;
        Ok(database
            .changes
            .iter()
            .filter(|c| c.seq > since)
            .cloned()
            .collect())
    }

    /// Latest sequence number of a database (0 when empty/unknown).
    pub fn last_seq(&self, db: &str) -> u64 {
        self.databases
            .get(db)
            .map(|d| d.changes.len() as u64)
            .unwrap_or(0)
    }

    /// Number of documents in a database (0 for unknown databases).
    pub fn count(&self, db: &str) -> usize {
        self.databases.get(db).map(|d| d.docs.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocumentStore {
        DocumentStore::new(Clock::new(), StoreCosts::default())
    }

    fn doc(n: i64) -> Value {
        Value::map([
            ("name".to_string(), Value::str(format!("emp{n}"))),
            (
                "role".to_string(),
                Value::str(if n % 2 == 0 { "dev" } else { "ops" }),
            ),
            ("base".to_string(), Value::Int(1000 + n)),
        ])
    }

    #[test]
    fn put_get_round_trip_with_revisions() {
        let mut s = store();
        let r1 = s.put("wages", "e1", &doc(1), None).expect("puts");
        assert_eq!(r1, 1);
        let r2 = s.put("wages", "e1", &doc(2), None).expect("puts");
        assert_eq!(r2, 2);
        let d = s.get("wages", "e1").expect("gets");
        assert_eq!(d.rev, 2);
        let Value::Map(m) = &d.body else {
            panic!("map")
        };
        assert_eq!(m.borrow()["base"], Value::Int(1002));
    }

    #[test]
    fn conflict_detection_with_expected_rev() {
        let mut s = store();
        s.put("db", "x", &doc(1), None).expect("puts");
        let err = s.put("db", "x", &doc(2), Some(0));
        assert!(matches!(err, Err(StoreError::Conflict { actual: 1, .. })));
        assert!(s.put("db", "x", &doc(2), Some(1)).is_ok());
    }

    #[test]
    fn get_missing_is_not_found() {
        let mut s = store();
        s.create_db("db");
        assert!(matches!(
            s.get("db", "nope"),
            Err(StoreError::NotFound { .. })
        ));
        assert!(matches!(
            s.get("nodb", "x"),
            Err(StoreError::NoSuchDatabase(_))
        ));
    }

    #[test]
    fn stored_documents_do_not_alias_caller_memory() {
        let mut s = store();
        let body = doc(1);
        s.put("db", "x", &body, None).expect("puts");
        // Mutate the caller's value after the put.
        if let Value::Map(m) = &body {
            m.borrow_mut().insert("base".to_string(), Value::Int(-1));
        }
        let d = s.get("db", "x").expect("gets");
        let Value::Map(m) = &d.body else {
            panic!("map")
        };
        assert_eq!(m.borrow()["base"], Value::Int(1001), "no aliasing");
    }

    #[test]
    fn find_matches_field_equality() {
        let mut s = store();
        for n in 0..6 {
            s.put("wages", &format!("e{n}"), &doc(n), None)
                .expect("puts");
        }
        let devs = s.find("wages", "role", &Value::str("dev")).expect("finds");
        assert_eq!(devs.len(), 3);
        let none = s.find("wages", "role", &Value::str("ceo")).expect("finds");
        assert!(none.is_empty());
    }

    #[test]
    fn change_feed_is_monotonic_and_filtered() {
        let mut s = store();
        s.put("db", "a", &doc(1), None).expect("puts");
        s.put("db", "b", &doc(2), None).expect("puts");
        s.put("db", "a", &doc(3), None).expect("puts");
        let all = s.changes_since("db", 0).expect("changes");
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].seq, 1);
        assert_eq!(all[2].seq, 3);
        assert_eq!(all[2].id, "a");
        assert_eq!(all[2].rev, 2);
        let tail = s.changes_since("db", 2).expect("changes");
        assert_eq!(tail.len(), 1);
        assert_eq!(s.last_seq("db"), 3);
    }

    #[test]
    fn delete_records_a_deletion_change() {
        let mut s = store();
        s.put("db", "x", &doc(1), None).expect("puts");
        s.delete("db", "x").expect("deletes");
        assert_eq!(s.count("db"), 0);
        let changes = s.changes_since("db", 0).expect("changes");
        assert!(changes[1].deleted);
        assert!(matches!(
            s.delete("db", "x"),
            Err(StoreError::NotFound { .. })
        ));
    }

    #[test]
    fn operations_charge_time() {
        let clock = Clock::new();
        let mut s = DocumentStore::new(clock.clone(), StoreCosts::default());
        let t0 = clock.now();
        s.put("db", "x", &doc(1), None).expect("puts");
        assert!(clock.now() > t0);
    }

    #[test]
    fn change_feed_from_stale_or_future_sequence() {
        let mut s = store();
        s.put("db", "a", &doc(1), None).expect("puts");
        s.put("db", "b", &doc(2), None).expect("puts");
        // A consumer resuming from a sequence at (or beyond) the head sees
        // nothing — no wraparound, no error.
        assert!(s.changes_since("db", 2).expect("at head").is_empty());
        assert!(s.changes_since("db", 999).expect("beyond head").is_empty());
        // An unknown database is an error, not an empty feed.
        assert!(matches!(
            s.changes_since("ghost", 0),
            Err(StoreError::NoSuchDatabase(_))
        ));
    }

    #[test]
    fn injected_outage_fails_requests_then_recovers() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let clock = Clock::new();
        let mut s = DocumentStore::new(clock.clone(), StoreCosts::default());
        s.put("db", "x", &doc(1), None).expect("puts while healthy");
        let t_before = clock.now();
        // Fire on the 1st and 2nd requests after arming.
        s.set_fault_injector(fault::shared(FaultInjector::new(
            FaultPlan::new(7)
                .nth(FaultSite::StoreUnavailable, 1)
                .nth(FaultSite::StoreUnavailable, 2),
        )));
        assert_eq!(s.get("db", "x").unwrap_err(), StoreError::Unavailable);
        assert_eq!(
            s.put("db", "y", &doc(2), None).unwrap_err(),
            StoreError::Unavailable
        );
        // A failed request never reaches the service: no cost, no state.
        assert_eq!(clock.now(), t_before);
        assert_eq!(s.count("db"), 1);
        // Third request goes through.
        assert_eq!(s.get("db", "x").expect("recovered").rev, 1);
        assert!(StoreError::Unavailable.to_string().contains("unavailable"));
    }
}
