//! Property tests: the document store agrees with a reference map and
//! its change feed is a faithful, monotone journal.

use fireworks_lang::Value;
use fireworks_sim::Clock;
use fireworks_store::{DocumentStore, StoreCosts, StoreError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put { id: u8, field: i64 },
    PutGuarded { id: u8, field: i64, expected: u64 },
    Get { id: u8 },
    Delete { id: u8 },
    Find { field: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..6, -3i64..3).prop_map(|(id, field)| Op::Put { id, field }),
        2 => (0u8..6, -3i64..3, 0u64..4)
            .prop_map(|(id, field, expected)| Op::PutGuarded { id, field, expected }),
        3 => (0u8..6).prop_map(|id| Op::Get { id }),
        1 => (0u8..6).prop_map(|id| Op::Delete { id }),
        2 => (-3i64..3).prop_map(|field| Op::Find { field }),
    ]
}

fn doc(field: i64) -> Value {
    Value::map([("v".to_string(), Value::Int(field))])
}

proptest! {
    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let mut store = DocumentStore::new(Clock::new(), StoreCosts::default());
        // Reference: id → (rev, field value).
        let mut model: std::collections::BTreeMap<String, (u64, i64)> = Default::default();
        let mut journal_len = 0u64;

        for op in ops {
            match op {
                Op::Put { id, field } => {
                    let id = format!("d{id}");
                    let rev = store.put("db", &id, &doc(field), None).expect("puts");
                    let expected_rev = model.get(&id).map(|(r, _)| r + 1).unwrap_or(1);
                    prop_assert_eq!(rev, expected_rev);
                    model.insert(id, (rev, field));
                    journal_len += 1;
                }
                Op::PutGuarded { id, field, expected } => {
                    let id = format!("d{id}");
                    let current = model.get(&id).map(|(r, _)| *r).unwrap_or(0);
                    let result = store.put("db", &id, &doc(field), Some(expected));
                    if expected == current {
                        prop_assert_eq!(result.expect("guard matched"), current + 1);
                        model.insert(id, (current + 1, field));
                        journal_len += 1;
                    } else {
                        let conflicted = matches!(result, Err(StoreError::Conflict { .. }));
                        prop_assert!(conflicted);
                    }
                }
                Op::Get { id } => {
                    let id = format!("d{id}");
                    match (store.get("db", &id), model.get(&id)) {
                        (Ok(d), Some((rev, field))) => {
                            prop_assert_eq!(d.rev, *rev);
                            let Value::Map(m) = &d.body else { panic!("map") };
                            prop_assert_eq!(m.borrow()["v"].clone(), Value::Int(*field));
                        }
                        (Err(_), None) => {}
                        (got, want) => prop_assert!(false, "mismatch: {got:?} vs {want:?}"),
                    }
                }
                Op::Delete { id } => {
                    let id = format!("d{id}");
                    let result = store.delete("db", &id);
                    if model.remove(&id).is_some() {
                        prop_assert!(result.is_ok());
                        journal_len += 1;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Find { field } => {
                    let found = store
                        .find("db", "v", &Value::Int(field))
                        .unwrap_or_default();
                    let expected = model.values().filter(|(_, f)| *f == field).count();
                    prop_assert_eq!(found.len(), expected);
                }
            }
            // The change feed is a monotone journal of every mutation.
            if store.has_db("db") {
                let changes = store.changes_since("db", 0).expect("changes");
                prop_assert_eq!(changes.len() as u64, journal_len);
                prop_assert!(changes.windows(2).all(|w| w[0].seq < w[1].seq));
                prop_assert_eq!(store.last_seq("db"), journal_len);
            }
        }
        prop_assert_eq!(store.count("db"), model.len());
    }
}
