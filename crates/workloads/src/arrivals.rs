//! Deterministic arrival schedules for the concurrent invocation engine.
//!
//! The load experiments drive [`fireworks_core::engine::run_concurrent`]
//! with open-loop request schedules: arrivals land whether or not earlier
//! requests finished, which is what exposes queueing delay and memory
//! pressure. Every schedule here is a pure function of its seed, so
//! same-seed runs are byte-identical.

use fireworks_core::api::InvokeRequest;
use fireworks_core::engine::EngineRequest;
use fireworks_lang::Value;
use fireworks_sim::rng::SplitMix64;
use fireworks_sim::Nanos;

/// A Poisson-like open-loop schedule: exponential inter-arrival times
/// with the given mean, each request picking uniformly from `mix`
/// (function name plus its request arguments).
///
/// # Panics
///
/// Panics if `mix` is empty.
pub fn poisson_schedule(
    seed: u64,
    count: usize,
    mean_inter_arrival: Nanos,
    mix: &[(&str, Value)],
) -> Vec<EngineRequest> {
    assert!(!mix.is_empty(), "need at least one function in the mix");
    let mut rng = SplitMix64::new(seed);
    let mut t = Nanos::ZERO;
    (0..count)
        .map(|_| {
            // Inverse-CDF sample of Exp(1/mean): -ln(U) * mean.
            let u = rng.next_f64().max(1e-12);
            t += mean_inter_arrival.scale(-u.ln());
            let (name, args) = &mix[rng.next_below(mix.len() as u64) as usize];
            EngineRequest::at(t, InvokeRequest::new(*name, args.deep_clone()))
        })
        .collect()
}

/// A burst of `count` simultaneous arrivals of one function at `at` —
/// the shape of the paper's density experiments (§5.4), where N clones
/// must coexist.
pub fn burst(function: &str, args: &Value, count: usize, at: Nanos) -> Vec<EngineRequest> {
    (0..count)
        .map(|_| EngineRequest::at(at, InvokeRequest::new(function, args.deep_clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<(&'static str, Value)> {
        vec![
            ("alpha", Value::Int(1)),
            ("beta", Value::Int(2)),
            ("gamma", Value::Int(3)),
        ]
    }

    #[test]
    fn schedules_are_sorted_and_deterministic() {
        let a = poisson_schedule(11, 200, Nanos::from_millis(10), &mix());
        let b = poisson_schedule(11, 200, Nanos::from_millis(10), &mix());
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.arrival == y.arrival && x.invoke.function == y.invoke.function));
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson_schedule(1, 50, Nanos::from_millis(10), &mix());
        let b = poisson_schedule(2, 50, Nanos::from_millis(10), &mix());
        assert!(a.iter().zip(&b).any(|(x, y)| x.arrival != y.arrival));
    }

    #[test]
    fn the_mix_is_covered() {
        let sched = poisson_schedule(5, 300, Nanos::from_millis(1), &mix());
        for (name, _) in mix() {
            assert!(
                sched.iter().any(|r| r.invoke.function == name),
                "{name} never drawn"
            );
        }
    }

    #[test]
    fn bursts_are_simultaneous() {
        let b = burst("f", &Value::Int(7), 12, Nanos::from_millis(3));
        assert_eq!(b.len(), 12);
        assert!(b.iter().all(|r| r.arrival == Nanos::from_millis(3)));
        assert!(b.iter().all(|r| r.invoke.args == Value::Int(7)));
    }
}
