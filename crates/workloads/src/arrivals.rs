//! Deterministic arrival schedules for the concurrent invocation engine.
//!
//! The load experiments drive [`fireworks_core::engine::run_concurrent`]
//! with open-loop request schedules: arrivals land whether or not earlier
//! requests finished, which is what exposes queueing delay and memory
//! pressure. Every schedule here is a pure function of its seed, so
//! same-seed runs are byte-identical.

use fireworks_core::api::InvokeRequest;
use fireworks_core::engine::EngineRequest;
use fireworks_core::FunctionId;
use fireworks_lang::Value;
use fireworks_sim::rng::SplitMix64;
use fireworks_sim::Nanos;

/// A Poisson-like open-loop schedule: exponential inter-arrival times
/// with the given mean, each request picking uniformly from `mix`
/// (interned function id plus its request arguments).
///
/// # Panics
///
/// Panics if `mix` is empty.
pub fn poisson_schedule(
    seed: u64,
    count: usize,
    mean_inter_arrival: Nanos,
    mix: &[(FunctionId, Value)],
) -> Vec<EngineRequest> {
    assert!(!mix.is_empty(), "need at least one function in the mix");
    let mut rng = SplitMix64::new(seed);
    let mut t = Nanos::ZERO;
    (0..count)
        .map(|_| {
            // Inverse-CDF sample of Exp(1/mean): -ln(U) * mean.
            let u = rng.next_f64().max(1e-12);
            t += mean_inter_arrival.scale(-u.ln());
            let (function, args) = &mix[rng.next_below(mix.len() as u64) as usize];
            EngineRequest::at(t, InvokeRequest::new(*function, args.deep_clone()))
        })
        .collect()
}

/// A flash-crowd schedule: Poisson arrivals whose mean inter-arrival
/// time drops from `base_mean` to `crowd_mean` inside the window
/// `[crowd_start, crowd_end)` and recovers afterwards — the classic
/// elasticity stressor (a quiet service suddenly trending). The draw
/// sequence is identical to [`poisson_schedule`]; only the mean is
/// piecewise, so same-seed runs stay byte-identical.
///
/// # Panics
///
/// Panics if `mix` is empty or `crowd_end < crowd_start`.
pub fn flash_crowd(
    seed: u64,
    count: usize,
    base_mean: Nanos,
    crowd_mean: Nanos,
    crowd_start: Nanos,
    crowd_end: Nanos,
    mix: &[(FunctionId, Value)],
) -> Vec<EngineRequest> {
    assert!(!mix.is_empty(), "need at least one function in the mix");
    assert!(crowd_start <= crowd_end, "crowd window must be ordered");
    let mut rng = SplitMix64::new(seed);
    let mut t = Nanos::ZERO;
    (0..count)
        .map(|_| {
            let mean = if t >= crowd_start && t < crowd_end {
                crowd_mean
            } else {
                base_mean
            };
            let u = rng.next_f64().max(1e-12);
            t += mean.scale(-u.ln());
            let (function, args) = &mix[rng.next_below(mix.len() as u64) as usize];
            EngineRequest::at(t, InvokeRequest::new(*function, args.deep_clone()))
        })
        .collect()
}

/// A burst of `count` simultaneous arrivals of one function at `at` —
/// the shape of the paper's density experiments (§5.4), where N clones
/// must coexist.
pub fn burst(function: FunctionId, args: &Value, count: usize, at: Nanos) -> Vec<EngineRequest> {
    (0..count)
        .map(|_| EngineRequest::at(at, InvokeRequest::new(function, args.deep_clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_core::fid;

    fn mix() -> Vec<(FunctionId, Value)> {
        vec![
            (fid("alpha"), Value::Int(1)),
            (fid("beta"), Value::Int(2)),
            (fid("gamma"), Value::Int(3)),
        ]
    }

    #[test]
    fn schedules_are_sorted_and_deterministic() {
        let a = poisson_schedule(11, 200, Nanos::from_millis(10), &mix());
        let b = poisson_schedule(11, 200, Nanos::from_millis(10), &mix());
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.arrival == y.arrival && x.invoke.function == y.invoke.function));
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson_schedule(1, 50, Nanos::from_millis(10), &mix());
        let b = poisson_schedule(2, 50, Nanos::from_millis(10), &mix());
        assert!(a.iter().zip(&b).any(|(x, y)| x.arrival != y.arrival));
    }

    #[test]
    fn the_mix_is_covered() {
        let sched = poisson_schedule(5, 300, Nanos::from_millis(1), &mix());
        for (function, _) in mix() {
            assert!(
                sched.iter().any(|r| r.invoke.function == function),
                "{} never drawn",
                function.name()
            );
        }
    }

    #[test]
    fn flash_crowd_densifies_inside_the_window() {
        let base = Nanos::from_millis(10);
        let crowd = Nanos::from_millis(1);
        let start = Nanos::from_millis(200);
        let end = Nanos::from_millis(400);
        let sched = flash_crowd(9, 400, base, crowd, start, end, &mix());
        assert!(sched.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let inside = sched
            .iter()
            .filter(|r| r.arrival >= start && r.arrival < end)
            .count();
        let before = sched.iter().filter(|r| r.arrival < start).count();
        // The crowd window is 10x denser than the quiet period; with a
        // 20x longer quiet span before it, the window should still hold
        // a clear majority of arrivals that land near it.
        assert!(
            inside > before,
            "crowd window must dominate: {inside} vs {before}"
        );
        // Determinism: same seed, same bytes.
        let again = flash_crowd(9, 400, base, crowd, start, end, &mix());
        assert!(sched
            .iter()
            .zip(&again)
            .all(|(x, y)| x.arrival == y.arrival && x.invoke.function == y.invoke.function));
    }

    #[test]
    fn flash_crowd_with_equal_means_matches_poisson() {
        let mean = Nanos::from_millis(5);
        let a = flash_crowd(3, 100, mean, mean, Nanos::ZERO, Nanos::ZERO, &mix());
        let b = poisson_schedule(3, 100, mean, &mix());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.arrival == y.arrival && x.invoke.function == y.invoke.function));
    }

    #[test]
    fn bursts_are_simultaneous() {
        let b = burst(fid("f"), &Value::Int(7), 12, Nanos::from_millis(3));
        assert_eq!(b.len(), 12);
        assert!(b.iter().all(|r| r.arrival == Nanos::from_millis(3)));
        assert!(b.iter().all(|r| r.invoke.args == Value::Int(7)));
    }
}
