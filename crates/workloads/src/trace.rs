//! Invocation-trace generation in the style of Shahrad et al.'s Azure
//! analysis (the paper's citation 48): function popularity is heavily
//! skewed — a small head is called many times a minute, a long tail less
//! than once a minute — which is the §2.2 argument against warm pools.

use fireworks_sim::rng::SplitMix64;
use fireworks_sim::Nanos;

/// One invocation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual arrival time.
    pub at: Nanos,
    /// Index of the invoked function.
    pub function: usize,
}

/// Configuration of a Zipf-popularity Poisson trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct functions.
    pub functions: usize,
    /// Total trace duration.
    pub horizon: Nanos,
    /// Expected total number of invocations over the horizon.
    pub total_events: usize,
    /// Zipf skew exponent (1.0 ≈ classic Zipf; higher = more skew).
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            functions: 24,
            horizon: Nanos::from_secs(30 * 60),
            total_events: 400,
            alpha: 1.0,
            seed: 7,
        }
    }
}

/// Per-function mean arrival rates (events per horizon), Zipf-weighted to
/// sum to `total_events`.
pub fn zipf_rates(cfg: &TraceConfig) -> Vec<f64> {
    let weights: Vec<f64> = (0..cfg.functions)
        .map(|i| 1.0 / (i as f64 + 1.0).powf(cfg.alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| w / total * cfg.total_events as f64)
        .collect()
}

/// Generates the merged trace: each function is an independent Poisson
/// process at its Zipf rate; events are merged and sorted. Deterministic
/// under the seed.
pub fn generate(cfg: &TraceConfig) -> Vec<TraceEvent> {
    let mut rng = SplitMix64::new(cfg.seed);
    let rates = zipf_rates(cfg);
    let mut events = Vec::with_capacity(cfg.total_events + cfg.functions);
    for (function, expected) in rates.iter().enumerate() {
        if *expected <= 0.0 {
            continue;
        }
        let mean_gap = cfg.horizon.scale(1.0 / expected);
        let mut t = Nanos::ZERO;
        loop {
            let u = rng.next_f64().max(1e-12);
            t += mean_gap.scale(-u.ln());
            if t >= cfg.horizon {
                break;
            }
            events.push(TraceEvent { at: t, function });
        }
    }
    events.sort_by_key(|e| (e.at, e.function));
    events
}

/// Fraction of functions whose mean inter-arrival exceeds one minute —
/// the paper's "81.4% of functions are called less than once a minute".
pub fn unpopular_fraction(cfg: &TraceConfig) -> f64 {
    let per_minute_budget = cfg.horizon.as_secs_f64() / 60.0;
    let unpopular = zipf_rates(cfg)
        .iter()
        .filter(|rate| **rate < per_minute_budget)
        .count();
    unpopular as f64 / cfg.functions as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_sorted_and_deterministic() {
        let cfg = TraceConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.is_empty());
        assert!(a.iter().all(|e| e.at < cfg.horizon));
    }

    #[test]
    fn event_count_is_near_target() {
        let cfg = TraceConfig {
            total_events: 1_000,
            ..TraceConfig::default()
        };
        let n = generate(&cfg).len();
        assert!((700..1_300).contains(&n), "expected ≈1000 events, got {n}");
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = TraceConfig {
            total_events: 2_000,
            ..TraceConfig::default()
        };
        let events = generate(&cfg);
        let mut counts = vec![0usize; cfg.functions];
        for e in &events {
            counts[e.function] += 1;
        }
        // The most popular function dominates the least popular by a lot.
        assert!(counts[0] > 10 * counts[cfg.functions - 1].max(1));
        // And the head (top quarter) carries the majority of traffic.
        let head: usize = counts.iter().take(cfg.functions / 4).sum();
        assert!(head * 2 > events.len());
    }

    #[test]
    fn unpopular_fraction_matches_shahrad_shape() {
        // With enough functions and a realistic budget, most functions
        // fall below once-a-minute — the paper's 81.4% figure.
        let cfg = TraceConfig {
            functions: 200,
            total_events: 3_000,
            horizon: Nanos::from_secs(30 * 60),
            ..TraceConfig::default()
        };
        let f = unpopular_fraction(&cfg);
        assert!(f > 0.6, "unpopular fraction {f}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TraceConfig::default());
        let b = generate(&TraceConfig {
            seed: 8,
            ..TraceConfig::default()
        });
        assert_ne!(a, b);
    }
}
