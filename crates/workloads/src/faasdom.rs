//! The FaaSdom microbenchmarks (paper §5.2) written in Flame.

use fireworks_core::api::FunctionSpec;
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;

/// Which FaaSdom benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// `faas-fact`: integer factorisation (compute-intensive).
    Fact,
    /// `faas-matrix-mult`: dense matrix multiplication (compute-intensive).
    MatrixMult,
    /// `faas-diskio`: 100 × 10 KiB file reads and writes (disk-intensive).
    DiskIo,
    /// `faas-netlatency`: immediate small HTTP response (network-intensive).
    NetLatency,
}

impl Bench {
    /// All four benchmarks, in the paper's figure order.
    pub const ALL: [Bench; 4] = [
        Bench::Fact,
        Bench::MatrixMult,
        Bench::DiskIo,
        Bench::NetLatency,
    ];

    /// The benchmark's FaaSdom name.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Fact => "faas-fact",
            Bench::MatrixMult => "faas-matrix-mult",
            Bench::DiskIo => "faas-diskio",
            Bench::NetLatency => "faas-netlatency",
        }
    }

    /// Whether the benchmark is compute-bound (vs. I/O-bound).
    pub fn is_compute(self) -> bool {
        matches!(self, Bench::Fact | Bench::MatrixMult)
    }

    /// Flame source for the benchmark. The same source serves both
    /// runtime profiles (as in FaaSdom, where the Node.js and Python
    /// versions implement identical logic).
    pub fn source(self) -> &'static str {
        match self {
            // Factorise each of `reps` numbers derived from `n`.
            Bench::Fact => {
                r#"
                fn factorize(n) {
                    let factors = [];
                    let m = n;
                    let d = 2;
                    while (d * d <= m) {
                        while (m % d == 0) {
                            push(factors, d);
                            m = m / d;
                        }
                        d = d + 1;
                    }
                    if (m > 1) { push(factors, m); }
                    return factors;
                }
                fn main(params) {
                    let n = params["n"];
                    let reps = params["reps"];
                    let count = 0;
                    for (let r = 0; r < reps; r = r + 1) {
                        count = count + len(factorize(n + r));
                    }
                    http_respond(str(count));
                    return count;
                }
            "#
            }
            // size×size integer matrices, classic triple loop.
            Bench::MatrixMult => {
                r#"
                fn make_matrix(size, seed) {
                    let m = [];
                    for (let i = 0; i < size; i = i + 1) {
                        let row = [];
                        for (let j = 0; j < size; j = j + 1) {
                            push(row, (i * 31 + j * 17 + seed) % 97);
                        }
                        push(m, row);
                    }
                    return m;
                }
                fn mat_mult(a, b, size) {
                    let out = [];
                    for (let i = 0; i < size; i = i + 1) {
                        let row = [];
                        for (let j = 0; j < size; j = j + 1) {
                            let acc = 0;
                            for (let k = 0; k < size; k = k + 1) {
                                acc = acc + a[i][k] * b[k][j];
                            }
                            push(row, acc);
                        }
                        push(out, row);
                    }
                    return out;
                }
                fn main(params) {
                    let size = params["size"];
                    let a = make_matrix(size, 1);
                    let b = make_matrix(size, 2);
                    let c = mat_mult(a, b, size);
                    let checksum = 0;
                    for (let i = 0; i < size; i = i + 1) {
                        checksum = checksum + c[i][i];
                    }
                    http_respond(str(checksum));
                    return checksum;
                }
            "#
            }
            // `ops` rounds of 10 KiB reads and writes (paper: 100 × 10 KiB).
            Bench::DiskIo => {
                r#"
                fn main(params) {
                    let ops = params["ops"];
                    let kib = params["kib"];
                    let moved = 0;
                    for (let i = 0; i < ops; i = i + 1) {
                        moved = moved + io_read("bench.dat", kib);
                        io_write("bench.dat", kib);
                        moved = moved + kib;
                    }
                    http_respond(str(moved));
                    return moved;
                }
            "#
            }
            // Immediate 79-byte response (plus ~500 B of headers charged
            // by the host).
            Bench::NetLatency => {
                r#"
                fn main(params) {
                    let body = "netlatency-response-body-0123456789-0123456789-0123456789-0123456789-0123456-ok";
                    http_respond(body);
                    return len(body);
                }
            "#
            }
        }
    }

    /// Default (install-time warm-up) parameters for the benchmark.
    pub fn default_params(self) -> Value {
        match self {
            Bench::Fact => Value::map([
                ("n".to_string(), Value::Int(1_000_003)),
                ("reps".to_string(), Value::Int(40)),
            ]),
            Bench::MatrixMult => Value::map([("size".to_string(), Value::Int(48))]),
            Bench::DiskIo => Value::map([
                ("ops".to_string(), Value::Int(100)),
                ("kib".to_string(), Value::Int(10)),
            ]),
            Bench::NetLatency => Value::map([]),
        }
    }

    /// Invocation parameters (the measured request). Uses the same shape
    /// but different values than the warm-up defaults, so a de-opt would
    /// be possible if the types were unstable.
    pub fn request_params(self) -> Value {
        match self {
            Bench::Fact => Value::map([
                ("n".to_string(), Value::Int(1_299_709)),
                ("reps".to_string(), Value::Int(40)),
            ]),
            Bench::MatrixMult => Value::map([("size".to_string(), Value::Int(48))]),
            Bench::DiskIo => Value::map([
                ("ops".to_string(), Value::Int(100)),
                ("kib".to_string(), Value::Int(10)),
            ]),
            Bench::NetLatency => Value::map([]),
        }
    }

    /// Paper-scale invocation parameters: heavy enough that virtual
    /// execution time lands in the paper's regime (compute benchmarks run
    /// for a substantial fraction of a second on the Node interpreter).
    /// Used by the figure harness; tests use the lighter
    /// [`Bench::request_params`].
    pub fn paper_params(self) -> Value {
        match self {
            Bench::Fact => Value::map([
                ("n".to_string(), Value::Int(1_299_709)),
                ("reps".to_string(), Value::Int(1_200)),
            ]),
            Bench::MatrixMult => Value::map([("size".to_string(), Value::Int(96))]),
            Bench::DiskIo => Value::map([
                ("ops".to_string(), Value::Int(100)),
                ("kib".to_string(), Value::Int(10)),
            ]),
            Bench::NetLatency => Value::map([]),
        }
    }

    /// Paper-scale install-time warm-up parameters (same shapes as
    /// [`Bench::paper_params`], different values).
    pub fn paper_default_params(self) -> Value {
        match self {
            Bench::Fact => Value::map([
                ("n".to_string(), Value::Int(1_000_003)),
                ("reps".to_string(), Value::Int(1_200)),
            ]),
            other => other.default_params(),
        }
    }

    /// Builds the paper-scale [`FunctionSpec`] for a runtime variant.
    pub fn paper_spec(self, runtime: RuntimeKind) -> FunctionSpec {
        FunctionSpec::new(
            self.function_name(runtime),
            self.source(),
            runtime,
            self.paper_default_params(),
        )
    }

    /// A registered-function name for one (benchmark, runtime) pair.
    pub fn function_name(self, runtime: RuntimeKind) -> String {
        format!("{}-{}", self.name(), runtime.name())
    }

    /// Builds the [`FunctionSpec`] for a runtime variant.
    pub fn spec(self, runtime: RuntimeKind) -> FunctionSpec {
        FunctionSpec::new(
            self.function_name(runtime),
            self.source(),
            runtime,
            self.default_params(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_lang::{compile, Outcome, Vm};
    use std::rc::Rc;

    /// A host that serves the FaaSdom I/O calls without charging time.
    struct BenchHost;

    impl fireworks_lang::Host for BenchHost {
        fn print(&mut self, _text: &str) {}

        fn host_call(
            &mut self,
            name: &str,
            args: &[Value],
        ) -> Result<Value, fireworks_lang::LangError> {
            match name {
                "io_read" => Ok(args[1].clone()),
                "io_write" | "http_respond" | "net_send" => Ok(Value::Null),
                other => Err(fireworks_lang::LangError::runtime(format!(
                    "unexpected host call {other}"
                ))),
            }
        }
    }

    fn run(bench: Bench, params: Value) -> Value {
        let program = Rc::new(compile(bench.source()).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![params]).expect("starts");
        match vm.run(&mut BenchHost).expect("runs") {
            Outcome::Done(v) => v,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fact_counts_prime_factors() {
        let params = Value::map([
            ("n".to_string(), Value::Int(360)),
            ("reps".to_string(), Value::Int(1)),
        ]);
        // 360 = 2^3 · 3^2 · 5 → 6 factors.
        assert_eq!(run(Bench::Fact, params), Value::Int(6));
    }

    #[test]
    fn fact_with_prime_input() {
        let params = Value::map([
            ("n".to_string(), Value::Int(101)),
            ("reps".to_string(), Value::Int(1)),
        ]);
        assert_eq!(run(Bench::Fact, params), Value::Int(1));
    }

    #[test]
    fn matrix_mult_is_deterministic_and_correct_for_small_case() {
        let params = Value::map([("size".to_string(), Value::Int(4))]);
        let a = run(Bench::MatrixMult, params.clone());
        let b = run(Bench::MatrixMult, params);
        assert_eq!(a, b);
        // Independent reference computation of the checksum.
        let size = 4i64;
        let idx = |i: i64, j: i64, seed: i64| (i * 31 + j * 17 + seed) % 97;
        let mut checksum = 0i64;
        for i in 0..size {
            for k in 0..size {
                // c[i][i] = Σ_k a[i][k] · b[k][i].
                checksum += idx(i, k, 1) * idx(k, i, 2);
            }
        }
        assert_eq!(a, Value::Int(checksum));
    }

    #[test]
    fn diskio_moves_requested_bytes() {
        let params = Value::map([
            ("ops".to_string(), Value::Int(5)),
            ("kib".to_string(), Value::Int(10)),
        ]);
        // 5 ops × (10 KiB read + 10 KiB write) = 100 KiB.
        assert_eq!(run(Bench::DiskIo, params), Value::Int(100));
    }

    #[test]
    fn netlatency_body_is_79_bytes() {
        assert_eq!(run(Bench::NetLatency, Value::map([])), Value::Int(79));
    }

    #[test]
    fn specs_compile_and_have_distinct_names() {
        let mut names = std::collections::HashSet::new();
        for bench in Bench::ALL {
            for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
                let spec = bench.spec(runtime);
                assert!(compile(&spec.source).is_ok(), "{} compiles", spec.name);
                assert!(names.insert(spec.name.clone()), "unique name {}", spec.name);
            }
        }
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn classification_matches_paper() {
        assert!(Bench::Fact.is_compute());
        assert!(Bench::MatrixMult.is_compute());
        assert!(!Bench::DiskIo.is_compute());
        assert!(!Bench::NetLatency.is_compute());
    }
}
