//! The ServerlessBench real-world applications (paper §5.3, Fig. 8) as
//! chains of serverless functions.

use fireworks_core::api::{
    FunctionSpec, Invocation, InvokeRequest, Platform, PlatformError, StartMode,
};
use fireworks_core::env::PlatformEnv;
use fireworks_core::fid;
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;

/// One named stage of an application chain.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Stage (function) name.
    pub stage: &'static str,
    /// The stage's invocation.
    pub invocation: Invocation,
}

// ---------------------------------------------------------------------------
// Alexa Skills (Fig. 8(a)): parse → {fact, reminder, smart home}.
// ---------------------------------------------------------------------------

/// Source of the Alexa intent parser.
const ALEXA_PARSE_SRC: &str = r#"
    fn classify(utterance) {
        if (has(utterance, "fact") || has(utterance, "tell me")) { return "fact"; }
        if (has(utterance, "remind") || has(utterance, "schedule")) { return "reminder"; }
        if (has(utterance, "light") || has(utterance, "door") || has(utterance, "tv")) {
            return "smarthome";
        }
        return "fact";
    }
    fn extract_slots(utterance, intent) {
        let slots = {};
        let words = split(utterance, " ");
        if (intent == "reminder") {
            let n = len(words);
            if (n > 2) { slots["item"] = words[n - 2]; slots["place"] = words[n - 1]; }
            slots["url"] = "https://calendar.example/" + str(len(utterance));
        }
        if (intent == "smarthome") {
            for (let i = 0; i < len(words); i = i + 1) {
                let w = words[i];
                if (w == "light" || w == "door" || w == "tv") { slots["device"] = w; }
            }
        }
        return slots;
    }
    fn main(params) {
        let utterance = params["utterance"];
        let intent = classify(utterance);
        let slots = extract_slots(utterance, intent);
        return { "intent": intent, "slots": slots, "utterance": utterance };
    }
"#;

/// Source of the fact skill.
const ALEXA_FACT_SRC: &str = r#"
    fn pick_fact(utterance) {
        let facts = [
            "A year on Mercury is just 88 days long.",
            "Honey never spoils.",
            "Octopuses have three hearts.",
            "Bananas are berries but strawberries are not.",
            "The Eiffel Tower grows in summer."
        ];
        return facts[len(utterance) % len(facts)];
    }
    fn main(req) {
        let fact = pick_fact(req["utterance"]);
        http_respond(fact);
        return { "intent": "fact", "response": fact };
    }
"#;

/// Source of the reminder skill (uses CouchDB).
const ALEXA_REMINDER_SRC: &str = r#"
    fn main(req) {
        let slots = req["slots"];
        let item = slots["item"];
        if (item == null) {
            // Lookup mode: list existing reminders.
            let found = db_find("reminders", "kind", "reminder");
            http_respond("you have " + str(len(found)) + " reminders");
            return { "intent": "reminder", "count": len(found) };
        }
        let doc = {
            "kind": "reminder",
            "item": item,
            "place": slots["place"],
            "url": slots["url"]
        };
        db_put("reminders", item, doc);
        let found = db_find("reminders", "kind", "reminder");
        http_respond("reminder saved: " + item);
        return { "intent": "reminder", "stored": item, "count": len(found) };
    }
"#;

/// Source of the smart-home skill (device state in CouchDB).
const ALEXA_SMARTHOME_SRC: &str = r#"
    fn main(req) {
        let device = req["slots"]["device"];
        if (device == null) { device = "light"; }
        let state = db_get("home", device);
        let on = false;
        if (state != null) { on = state["on"]; }
        let next = !on;
        db_put("home", device, { "device": device, "on": next });
        let word = "off";
        if (next) { word = "on"; }
        http_respond(device + " is now " + word);
        return { "intent": "smarthome", "device": device, "on": next };
    }
"#;

/// The Alexa Skills application: specs, install, and the request driver.
pub struct AlexaApp;

impl AlexaApp {
    /// Function specs for all Alexa stages (Node.js, as in the paper).
    pub fn specs() -> Vec<FunctionSpec> {
        let default_req =
            Value::map([("utterance".to_string(), Value::str("alexa tell me a fact"))]);
        let default_parsed = Value::map([
            ("intent".to_string(), Value::str("fact")),
            ("slots".to_string(), Value::map([])),
            ("utterance".to_string(), Value::str("alexa tell me a fact")),
        ]);
        vec![
            FunctionSpec::new(
                "alexa-parse",
                ALEXA_PARSE_SRC,
                RuntimeKind::NodeLike,
                default_req,
            ),
            FunctionSpec::new(
                "alexa-fact",
                ALEXA_FACT_SRC,
                RuntimeKind::NodeLike,
                default_parsed.deep_clone(),
            ),
            FunctionSpec::new(
                "alexa-reminder",
                ALEXA_REMINDER_SRC,
                RuntimeKind::NodeLike,
                default_parsed.deep_clone(),
            ),
            FunctionSpec::new(
                "alexa-smarthome",
                ALEXA_SMARTHOME_SRC,
                RuntimeKind::NodeLike,
                default_parsed,
            ),
        ]
    }

    /// Installs every stage on a platform.
    pub fn install<P: Platform + ?Sized>(platform: &mut P) -> Result<(), PlatformError> {
        for spec in Self::specs() {
            platform.install(&spec)?;
        }
        Ok(())
    }

    /// Runs one Alexa request through the chain: parse, then the skill the
    /// parser picked — exactly Fig. 8(a)'s invocation shape.
    pub fn run<P: Platform + ?Sized>(
        platform: &mut P,
        utterance: &str,
        mode: StartMode,
    ) -> Result<Vec<StageResult>, PlatformError> {
        let request = Value::map([("utterance".to_string(), Value::str(utterance))]);
        let parse =
            platform.invoke(&InvokeRequest::new(fid("alexa-parse"), request).with_mode(mode))?;
        let intent = match &parse.value {
            Value::Map(m) => match m.borrow().get("intent") {
                Some(Value::Str(s)) => s.to_string(),
                _ => "fact".to_string(),
            },
            _ => "fact".to_string(),
        };
        let skill = match intent.as_str() {
            "reminder" => "alexa-reminder",
            "smarthome" => "alexa-smarthome",
            _ => "alexa-fact",
        };
        let skill_stage: &'static str = match intent.as_str() {
            "reminder" => "reminder",
            "smarthome" => "smart home",
            _ => "fact",
        };
        let skill_inv = platform
            .invoke(&InvokeRequest::new(fid(skill), parse.value.deep_clone()).with_mode(mode))?;
        Ok(vec![
            StageResult {
                stage: "parse",
                invocation: parse,
            },
            StageResult {
                stage: skill_stage,
                invocation: skill_inv,
            },
        ])
    }
}

// ---------------------------------------------------------------------------
// Data Analysis (Fig. 8(b)): validate → insert, then a DB-triggered
// analysis chain.
// ---------------------------------------------------------------------------

/// Format validation stage.
const WAGE_VALIDATE_SRC: &str = r#"
    fn valid_field(rec, field, kind) {
        let v = rec[field];
        if (v == null) { return false; }
        return type(v) == kind;
    }
    fn main(rec) {
        let ok = valid_field(rec, "name", "string")
            && valid_field(rec, "id", "string")
            && valid_field(rec, "role", "string")
            && valid_field(rec, "base", "int");
        return { "ok": ok, "record": rec };
    }
"#;

/// Format transformation + insertion stage.
const WAGE_INSERT_SRC: &str = r#"
    fn main(checked) {
        if (!checked["ok"]) {
            http_respond("rejected");
            return { "ok": false };
        }
        let rec = checked["record"];
        let doc = {
            "kind": "wage",
            "name": rec["name"],
            "id": rec["id"],
            "role": rec["role"],
            "base": rec["base"],
            "annual": rec["base"] * 12
        };
        db_put("wages", rec["id"], doc);
        http_respond("stored " + rec["id"]);
        return { "ok": true, "id": rec["id"] };
    }
"#;

/// The analysis stage: bonuses, taxes, statistics (triggered by DB update).
const WAGE_STATS_SRC: &str = r#"
    fn bonus_rate(role) {
        if (role == "manager") { return 20; }
        if (role == "dev") { return 15; }
        return 10;
    }
    fn tax_rate(annual) {
        if (annual > 100000) { return 40; }
        if (annual > 50000) { return 30; }
        return 20;
    }
    fn main(params) {
        let rows = db_find("wages", "kind", "wage");
        let n = len(rows);
        let total_net = 0;
        let total_bonus = 0;
        let max_net = 0;
        for (let i = 0; i < n; i = i + 1) {
            let row = rows[i];
            let annual = row["annual"];
            let bonus = annual * bonus_rate(row["role"]) / 100;
            let gross = annual + bonus;
            let tax = gross * tax_rate(annual) / 100;
            let net = gross - tax;
            total_net = total_net + net;
            total_bonus = total_bonus + bonus;
            if (net > max_net) { max_net = net; }
        }
        let avg_net = 0;
        if (n > 0) { avg_net = total_net / n; }
        let stats = {
            "kind": "stats",
            "employees": n,
            "total_net": total_net,
            "total_bonus": total_bonus,
            "avg_net": avg_net,
            "max_net": max_net
        };
        db_put("stats", "latest", stats);
        http_respond("analyzed " + str(n) + " employees");
        return stats;
    }
"#;

/// The Data Analysis application with its Cloud trigger.
pub struct DataAnalysisApp {
    env: PlatformEnv,
    last_seq: u64,
}

impl DataAnalysisApp {
    /// Function specs for all stages.
    pub fn specs() -> Vec<FunctionSpec> {
        let default_record = Value::map([
            ("name".to_string(), Value::str("alice")),
            ("id".to_string(), Value::str("e-0")),
            ("role".to_string(), Value::str("dev")),
            ("base".to_string(), Value::Int(5000)),
        ]);
        let default_checked = Value::map([
            ("ok".to_string(), Value::Bool(true)),
            ("record".to_string(), default_record.deep_clone()),
        ]);
        vec![
            FunctionSpec::new(
                "wage-validate",
                WAGE_VALIDATE_SRC,
                RuntimeKind::NodeLike,
                default_record,
            ),
            FunctionSpec::new(
                "wage-insert",
                WAGE_INSERT_SRC,
                RuntimeKind::NodeLike,
                default_checked,
            ),
            FunctionSpec::new(
                "wage-stats",
                WAGE_STATS_SRC,
                RuntimeKind::NodeLike,
                Value::map([]),
            ),
        ]
    }

    /// Creates the app against a host environment (for the DB trigger) and
    /// installs all stages.
    pub fn install<P: Platform + ?Sized>(
        platform: &mut P,
        env: PlatformEnv,
    ) -> Result<Self, PlatformError> {
        for spec in Self::specs() {
            platform.install(&spec)?;
        }
        let last_seq = env.store.borrow().last_seq("wages");
        Ok(DataAnalysisApp { env, last_seq })
    }

    /// Runs the insertion chain (validate → insert) for one wage record.
    pub fn insert<P: Platform + ?Sized>(
        &mut self,
        platform: &mut P,
        record: &Value,
        mode: StartMode,
    ) -> Result<Vec<StageResult>, PlatformError> {
        let results = platform.invoke_chain(
            &[fid("wage-validate"), fid("wage-insert")],
            &InvokeRequest::new(fid("wage-validate"), record.deep_clone()).with_mode(mode),
        )?;
        let mut out = Vec::with_capacity(2);
        let mut iter = results.into_iter();
        out.push(StageResult {
            stage: "validate",
            invocation: iter.next().expect("two stages"),
        });
        out.push(StageResult {
            stage: "insert",
            invocation: iter.next().expect("two stages"),
        });
        Ok(out)
    }

    /// Polls the Cloud trigger: if the wages database changed since the
    /// last poll, runs the analysis chain (Fig. 8(b)'s dashed box) and
    /// returns its stages. Returns `None` when nothing changed.
    pub fn poll_trigger<P: Platform + ?Sized>(
        &mut self,
        platform: &mut P,
        mode: StartMode,
    ) -> Result<Option<Vec<StageResult>>, PlatformError> {
        let seq = self.env.store.borrow().last_seq("wages");
        if seq <= self.last_seq {
            return Ok(None);
        }
        self.last_seq = seq;
        let inv = platform
            .invoke(&InvokeRequest::new(fid("wage-stats"), Value::map([])).with_mode(mode))?;
        Ok(Some(vec![StageResult {
            stage: "analysis",
            invocation: inv,
        }]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_core::{FireworksPlatform, PlatformEnv};

    fn fireworks() -> (FireworksPlatform, PlatformEnv) {
        let env = PlatformEnv::default_env();
        (FireworksPlatform::new(env.clone()), env)
    }

    #[test]
    fn alexa_fact_request_round_trips() {
        let (mut p, _env) = fireworks();
        AlexaApp::install(&mut p).expect("installs");
        let stages = AlexaApp::run(&mut p, "alexa tell me a fact", StartMode::Auto).expect("runs");
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage, "parse");
        assert_eq!(stages[1].stage, "fact");
        let response = stages[1].invocation.response.as_deref().expect("responds");
        assert!(!response.is_empty());
    }

    #[test]
    fn alexa_reminder_stores_in_couchdb() {
        let (mut p, env) = fireworks();
        AlexaApp::install(&mut p).expect("installs");
        let stages = AlexaApp::run(
            &mut p,
            "alexa remind me to buy milk kitchen",
            StartMode::Auto,
        )
        .expect("runs");
        assert_eq!(stages[1].stage, "reminder");
        assert_eq!(env.store.borrow().count("reminders"), 1);
        let doc = env.store.borrow().get("reminders", "milk").expect("doc");
        let Value::Map(m) = &doc.body else {
            panic!("map")
        };
        assert_eq!(m.borrow()["place"], Value::str("kitchen"));
    }

    #[test]
    fn alexa_smarthome_toggles_device_state() {
        let (mut p, env) = fireworks();
        AlexaApp::install(&mut p).expect("installs");
        AlexaApp::run(&mut p, "alexa turn the light", StartMode::Auto).expect("first");
        let doc = env.store.borrow().get("home", "light").expect("doc");
        let Value::Map(m) = &doc.body else {
            panic!("map")
        };
        assert_eq!(m.borrow()["on"], Value::Bool(true));
        AlexaApp::run(&mut p, "alexa turn the light", StartMode::Auto).expect("second");
        let doc = env.store.borrow().get("home", "light").expect("doc");
        let Value::Map(m) = &doc.body else {
            panic!("map")
        };
        assert_eq!(m.borrow()["on"], Value::Bool(false));
    }

    #[test]
    fn data_analysis_end_to_end_with_trigger() {
        let (mut p, env) = fireworks();
        let mut app = DataAnalysisApp::install(&mut p, env.clone()).expect("installs");

        // No changes yet → trigger stays quiet.
        assert!(app
            .poll_trigger(&mut p, StartMode::Auto)
            .expect("polls")
            .is_none());

        let record = Value::map([
            ("name".to_string(), Value::str("bob")),
            ("id".to_string(), Value::str("e-1")),
            ("role".to_string(), Value::str("manager")),
            ("base".to_string(), Value::Int(10_000)),
        ]);
        let stages = app
            .insert(&mut p, &record, StartMode::Auto)
            .expect("inserts");
        assert_eq!(stages.len(), 2);
        assert_eq!(env.store.borrow().count("wages"), 1);

        // The DB update fires the analysis chain.
        let analysis = app
            .poll_trigger(&mut p, StartMode::Auto)
            .expect("polls")
            .expect("triggered");
        assert_eq!(analysis[0].stage, "analysis");
        let Value::Map(stats) = &analysis[0].invocation.value else {
            panic!("stats map")
        };
        // annual = 120000, bonus 20% = 24000, gross = 144000, tax 40% =
        // 57600, net = 86400.
        assert_eq!(stats.borrow()["employees"], Value::Int(1));
        assert_eq!(stats.borrow()["max_net"], Value::Int(86_400));
        assert_eq!(env.store.borrow().count("stats"), 1);

        // Trigger does not refire without new changes.
        assert!(app
            .poll_trigger(&mut p, StartMode::Auto)
            .expect("polls")
            .is_none());
    }

    #[test]
    fn invalid_wage_records_are_rejected() {
        let (mut p, env) = fireworks();
        let mut app = DataAnalysisApp::install(&mut p, env.clone()).expect("installs");
        let bad = Value::map([
            ("name".to_string(), Value::str("x")),
            ("id".to_string(), Value::str("e-9")),
            // Missing role; base has the wrong type.
            ("base".to_string(), Value::str("lots")),
        ]);
        let stages = app.insert(&mut p, &bad, StartMode::Auto).expect("runs");
        let Value::Map(m) = &stages[1].invocation.value else {
            panic!("map")
        };
        assert_eq!(m.borrow()["ok"], Value::Bool(false));
        assert_eq!(env.store.borrow().count("wages"), 0);
    }
}
