//! The paper's workloads (Table 2):
//!
//! - [`faasdom`]: the four FaaSdom microbenchmarks — integer
//!   factorisation, matrix multiplication, disk I/O, and network latency —
//!   in Node.js-profile and Python-profile variants.
//! - [`serverlessbench`]: the two ServerlessBench applications — Alexa
//!   Skills and Data Analysis — as chains of serverless functions over the
//!   document store, with the Cloud-trigger wiring for the analysis chain.
//! - [`generators`]: deterministic request generators (utterances, wage
//!   records).
//! - [`arrivals`]: deterministic open-loop arrival schedules for the
//!   concurrent invocation engine.
//! - [`azure`]: the planet-scale Azure-Functions-shaped trace generator
//!   (Zipf popularity, diurnal envelopes, correlated bursts, log-normal
//!   execution times) behind the `scale_sweep` bench.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod azure;
pub mod faasdom;
pub mod generators;
pub mod serverlessbench;
pub mod trace;

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    /// Application name.
    pub name: &'static str,
    /// Description.
    pub description: &'static str,
    /// Languages the paper evaluates it in.
    pub languages: &'static str,
}

/// The tested-applications catalogue (paper Table 2).
pub fn catalog() -> Vec<CatalogRow> {
    vec![
        CatalogRow {
            name: "FaaSdom: faas-fact",
            description: "Integer factorization",
            languages: "Node.js, Python",
        },
        CatalogRow {
            name: "FaaSdom: faas-matrix-mult",
            description: "Multiplication of large matrices",
            languages: "Node.js, Python",
        },
        CatalogRow {
            name: "FaaSdom: faas-diskio",
            description: "Disk I/O performance measurement",
            languages: "Node.js, Python",
        },
        CatalogRow {
            name: "FaaSdom: faas-netlatency",
            description: "Network latency test that immediately responds upon invocation",
            languages: "Node.js, Python",
        },
        CatalogRow {
            name: "ServerlessBench: Alexa skills",
            description: "Apps run through Alexa AI device",
            languages: "Node.js",
        },
        CatalogRow {
            name: "ServerlessBench: data analysis",
            description: "Store and analyze the statistics of employees' wages",
            languages: "Node.js",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        let rows = catalog();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().take(4).all(|r| r.languages.contains("Python")));
        assert!(rows.iter().skip(4).all(|r| r.languages == "Node.js"));
    }
}
