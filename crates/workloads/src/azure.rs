//! Azure-Functions-shaped trace generation at planet scale.
//!
//! Shahrad et al.'s production characterization (the paper's citation
//! 48) established the workload shape every serverless scheduler must
//! survive: thousands of tenants, Zipf-skewed function popularity (a
//! tiny head takes most of the traffic, an enormous tail is called less
//! than once a minute), per-function diurnal rate envelopes, correlated
//! within-tenant bursts, and heavy-tailed (log-normal) execution times.
//! [`TraceSpec`] is a seeded builder for that shape; [`TraceSpec::generate`]
//! produces the merged, time-sorted invocation stream.
//!
//! The generator is minute-bucketed: each function's expected per-minute
//! rate is the product of its Zipf weight, its diurnal envelope, and any
//! burst multiplier covering its tenant at that minute, normalized so
//! the expected event total over the horizon equals
//! [`TraceSpec::total_invocations`] exactly. Realized counts are Poisson
//! draws per (function, minute) from per-function RNG substreams, so the
//! whole trace is a pure function of the spec: same spec → byte-identical
//! events, regardless of how the caller interleaves other RNG use.

use fireworks_core::{fid, FunctionId};
use fireworks_sim::rng::SplitMix64;
use fireworks_sim::Nanos;

/// One generated invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AzureEvent {
    /// Virtual arrival time.
    pub at: Nanos,
    /// The invoked function (interned).
    pub function: FunctionId,
    /// Owning tenant index.
    pub tenant: u32,
    /// Sampled execution time (log-normal, heavy-tailed).
    pub exec: Nanos,
}

/// One burst window: every function of `tenant` runs at `factor`× its
/// base rate for the covered minutes — the correlated-burst shape
/// (a tenant's deploy or fan-out hits all its functions at once).
#[derive(Debug, Clone, Copy)]
struct Burst {
    tenant: u32,
    start_minute: u32,
    end_minute: u32,
    factor: f64,
}

/// Builder for an Azure-shaped trace. Construct with [`TraceSpec::new`],
/// chain the setters, then call [`TraceSpec::generate`].
///
/// ```
/// use fireworks_workloads::azure::TraceSpec;
///
/// let trace = TraceSpec::new()
///     .tenants(50)
///     .functions_per_tenant(4)
///     .total_invocations(2_000)
///     .seed(7)
///     .generate();
/// assert!(!trace.events.is_empty());
/// // Same spec, same bytes.
/// let again = TraceSpec::new()
///     .tenants(50)
///     .functions_per_tenant(4)
///     .total_invocations(2_000)
///     .seed(7)
///     .generate();
/// assert_eq!(trace.events, again.events);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TraceSpec {
    /// Number of tenants.
    pub tenants: u32,
    /// Functions owned by each tenant.
    pub functions_per_tenant: u32,
    /// Zipf skew exponent over the global function population
    /// (1.0 ≈ classic Zipf; higher = more skew).
    pub alpha: f64,
    /// Trace duration.
    pub horizon: Nanos,
    /// Expected total invocation count over the horizon.
    pub total_invocations: u64,
    /// Diurnal envelope amplitude in `[0, 1)`: each function's rate
    /// swings between `1 - amplitude` and `1 + amplitude` of its mean
    /// over [`TraceSpec::diurnal_period`], phase-shifted per function.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal envelope (24 h in production; shorter for
    /// compressed experiments).
    pub diurnal_period: Nanos,
    /// Number of injected burst windows.
    pub bursts: u32,
    /// Rate multiplier inside a burst window.
    pub burst_factor: f64,
    /// Burst window length in minutes.
    pub burst_minutes: u32,
    /// Median execution time (the log-normal's `exp(μ)`).
    pub exec_median: Nanos,
    /// Log-normal shape parameter σ; 1.5–2.5 reproduces the heavy tail
    /// of the Azure duration distribution.
    pub exec_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            tenants: 1_000,
            functions_per_tenant: 4,
            alpha: 1.1,
            horizon: Nanos::from_secs(60 * 60),
            total_invocations: 100_000,
            diurnal_amplitude: 0.6,
            diurnal_period: Nanos::from_secs(60 * 60),
            bursts: 8,
            burst_factor: 12.0,
            burst_minutes: 3,
            exec_median: Nanos::from_millis(40),
            exec_sigma: 1.8,
            seed: 42,
        }
    }
}

impl TraceSpec {
    /// The default spec: 1000 tenants × 4 functions, one-hour horizon,
    /// 100k invocations.
    pub fn new() -> Self {
        TraceSpec::default()
    }

    /// Sets the tenant count.
    pub fn tenants(mut self, tenants: u32) -> Self {
        self.tenants = tenants.max(1);
        self
    }

    /// Sets the functions owned by each tenant.
    pub fn functions_per_tenant(mut self, functions: u32) -> Self {
        self.functions_per_tenant = functions.max(1);
        self
    }

    /// Sets the Zipf skew exponent.
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the trace duration.
    pub fn horizon(mut self, horizon: Nanos) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the expected total invocation count.
    pub fn total_invocations(mut self, total: u64) -> Self {
        self.total_invocations = total;
        self
    }

    /// Sets the diurnal envelope (amplitude in `[0, 1)`, period).
    pub fn diurnal(mut self, amplitude: f64, period: Nanos) -> Self {
        self.diurnal_amplitude = amplitude.clamp(0.0, 0.99);
        self.diurnal_period = period;
        self
    }

    /// Sets the correlated-burst injection: `count` windows of
    /// `minutes` length at `factor`× the base rate.
    pub fn burst_injection(mut self, count: u32, factor: f64, minutes: u32) -> Self {
        self.bursts = count;
        self.burst_factor = factor.max(1.0);
        self.burst_minutes = minutes.max(1);
        self
    }

    /// Sets the log-normal execution-time model (median, σ).
    pub fn exec_model(mut self, median: Nanos, sigma: f64) -> Self {
        self.exec_median = median;
        self.exec_sigma = sigma.max(0.0);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total functions across all tenants.
    pub fn functions(&self) -> u32 {
        self.tenants * self.functions_per_tenant
    }

    /// Whole minutes in the horizon (at least 1).
    pub fn minutes(&self) -> u32 {
        ((self.horizon.as_nanos() / 60_000_000_000).max(1)) as u32
    }

    /// The interned id of function `f` (`0..self.functions()`). Function
    /// `f` belongs to tenant `f % tenants`, so every tenant owns a slice
    /// of the popularity spectrum.
    pub fn function_id(&self, f: u32) -> FunctionId {
        fid(&format!("az-t{}-f{}", f % self.tenants, f / self.tenants))
    }

    /// Expected per-minute event rates, summed over all functions:
    /// `rates()[m]` is the expected number of arrivals in minute `m`.
    /// The vector sums to [`TraceSpec::total_invocations`] exactly (up
    /// to floating-point rounding) — the contract the rate-integration
    /// property test pins down.
    pub fn rates(&self) -> Vec<f64> {
        let minutes = self.minutes() as usize;
        let mut per_minute = vec![0.0f64; minutes];
        self.for_each_intensity(|_, m, lambda| per_minute[m as usize] += lambda);
        per_minute
    }

    /// Generates the trace: time-sorted events, deterministic under the
    /// spec.
    pub fn generate(&self) -> AzureTrace {
        let mut events = Vec::with_capacity(self.total_invocations as usize + 1024);
        let minute = Nanos::from_secs(60);
        let exec_mu = (self.exec_median.as_nanos().max(1) as f64).ln();
        let mut current = u32::MAX;
        let mut rng = SplitMix64::new(0);
        let mut function = fid("az-unreachable");
        let mut tenant = 0u32;
        self.for_each_intensity(|f, m, lambda| {
            if f != current {
                current = f;
                rng = self.stream(f);
                function = self.function_id(f);
                tenant = f % self.tenants;
            }
            let n = poisson(&mut rng, lambda);
            for _ in 0..n {
                let at = minute * m as u64 + minute.scale(rng.next_f64());
                let z = standard_normal(&mut rng);
                let exec_ns = (exec_mu + self.exec_sigma * z).exp();
                events.push(AzureEvent {
                    at,
                    function,
                    tenant,
                    exec: Nanos::from_nanos(exec_ns.clamp(1e3, 3.6e12) as u64),
                });
            }
        });
        events.sort_by_key(|e| (e.at, e.function));
        AzureTrace { events }
    }

    /// Visits every (function, minute) cell in function-major order with
    /// its normalized expected event count. Single source of truth for
    /// both [`TraceSpec::rates`] and [`TraceSpec::generate`].
    fn for_each_intensity(&self, mut visit: impl FnMut(u32, u32, f64)) {
        let functions = self.functions();
        let minutes = self.minutes();
        let bursts = self.burst_windows();
        let weights: Vec<f64> = (0..functions)
            .map(|f| 1.0 / (f as f64 + 1.0).powf(self.alpha))
            .collect();
        // First pass: the unnormalized intensity mass, so the second
        // pass can scale every cell to hit the spec's total exactly.
        let mut mass = 0.0f64;
        for f in 0..functions {
            for m in 0..minutes {
                mass += weights[f as usize] * self.envelope(f, m, &bursts);
            }
        }
        if mass <= 0.0 {
            return;
        }
        let scale = self.total_invocations as f64 / mass;
        for f in 0..functions {
            for m in 0..minutes {
                visit(
                    f,
                    m,
                    weights[f as usize] * self.envelope(f, m, &bursts) * scale,
                );
            }
        }
    }

    /// Diurnal × burst multiplier for function `f` at minute `m`.
    fn envelope(&self, f: u32, m: u32, bursts: &[Burst]) -> f64 {
        let period_min = (self.diurnal_period.as_secs_f64() / 60.0).max(1.0);
        // Per-function phase: functions don't peak in lockstep.
        let phase = (f as f64 * 0.618_033_988_749_895).fract();
        let angle = std::f64::consts::TAU * (m as f64 / period_min + phase);
        let mut v = 1.0 + self.diurnal_amplitude * angle.sin();
        let tenant = f % self.tenants;
        for b in bursts {
            if b.tenant == tenant && m >= b.start_minute && m < b.end_minute {
                v *= b.factor;
            }
        }
        v
    }

    /// The burst windows, drawn from a dedicated RNG substream.
    fn burst_windows(&self) -> Vec<Burst> {
        let mut rng = SplitMix64::new(self.seed ^ 0xB0B5_7B0B_57B0_B57B);
        let minutes = self.minutes();
        (0..self.bursts)
            .map(|_| {
                let start = rng.next_below(minutes as u64) as u32;
                Burst {
                    tenant: rng.next_below(self.tenants as u64) as u32,
                    start_minute: start,
                    end_minute: (start + self.burst_minutes).min(minutes),
                    factor: self.burst_factor,
                }
            })
            .collect()
    }

    /// The per-function RNG substream: splits the seed so a function's
    /// draws are independent of every other function's.
    fn stream(&self, f: u32) -> SplitMix64 {
        SplitMix64::new(self.seed ^ (f as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A generated trace: the time-sorted event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct AzureTrace {
    /// Events sorted by `(at, function)`.
    pub events: Vec<AzureEvent>,
}

impl AzureTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A compact deterministic fingerprint of the full event stream —
    /// what the byte-identity tests and the CI two-run diff compare.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the raw event words.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for e in &self.events {
            mix(e.at.as_nanos());
            mix(e.function.raw() as u64);
            mix(e.exec.as_nanos());
        }
        h
    }
}

/// Poisson draw: Knuth's product method for small λ, halved recursively
/// for large λ (exact in distribution, bounded work per draw).
fn poisson(rng: &mut SplitMix64, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let half = lambda / 2.0;
        return poisson(rng, half) + poisson(rng, half);
    }
    let limit = (-lambda).exp();
    let mut product = rng.next_f64();
    let mut count = 0u64;
    while product > limit {
        count += 1;
        product *= rng.next_f64();
    }
    count
}

/// Standard normal draw via Box–Muller.
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TraceSpec {
        TraceSpec::new()
            .tenants(40)
            .functions_per_tenant(3)
            .total_invocations(5_000)
            .horizon(Nanos::from_secs(20 * 60))
            .seed(11)
    }

    #[test]
    fn same_spec_generates_byte_identical_traces() {
        let a = small_spec().generate();
        let b = small_spec().generate();
        assert_eq!(a.events, b.events, "same spec must give the same bytes");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_spec().generate();
        let b = small_spec().seed(12).generate();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn events_are_sorted_and_inside_the_horizon() {
        let spec = small_spec();
        let t = spec.generate();
        assert!(t.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(t.events.iter().all(|e| e.at < spec.horizon));
    }

    #[test]
    fn per_minute_rates_integrate_to_the_spec_total() {
        // The normalization contract: expected rates sum to the spec's
        // total exactly (up to float rounding)...
        let spec = small_spec();
        let rates = spec.rates();
        assert_eq!(rates.len(), spec.minutes() as usize);
        let expected: f64 = rates.iter().sum();
        let total = spec.total_invocations as f64;
        assert!(
            (expected - total).abs() < 1e-6 * total,
            "expected rates sum {expected}, spec total {total}"
        );
        // ...and the realized Poisson count lands within 5σ of it.
        let realized = spec.generate().len() as f64;
        let tolerance = 5.0 * total.sqrt();
        assert!(
            (realized - total).abs() < tolerance,
            "realized {realized} vs expected {total} (±{tolerance})"
        );
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let spec = small_spec();
        let t = spec.generate();
        let head = spec.function_id(0);
        let tail = spec.function_id(spec.functions() - 1);
        let head_n = t.events.iter().filter(|e| e.function == head).count();
        let tail_n = t.events.iter().filter(|e| e.function == tail).count();
        assert!(
            head_n > 10 * tail_n.max(1),
            "head {head_n} must dwarf tail {tail_n}"
        );
    }

    #[test]
    fn exec_times_are_heavy_tailed() {
        let spec = small_spec();
        let t = spec.generate();
        let mut execs: Vec<u64> = t.events.iter().map(|e| e.exec.as_nanos()).collect();
        execs.sort_unstable();
        let p50 = execs[execs.len() / 2];
        let p99 = execs[execs.len() * 99 / 100];
        // Log-normal with σ=1.8: p99/p50 = exp(2.326σ) ≈ 66.
        assert!(
            p99 > 10 * p50,
            "p99 {p99} must dwarf p50 {p50} for a heavy tail"
        );
    }

    #[test]
    fn bursts_concentrate_tenant_traffic() {
        let calm = small_spec().burst_injection(0, 1.0, 1);
        let stormy = small_spec().burst_injection(6, 25.0, 3);
        // Peak minute share of the busiest minute must rise under bursts.
        let share = |spec: &TraceSpec| {
            let t = spec.generate();
            let mut per_minute = vec![0usize; spec.minutes() as usize];
            for e in &t.events {
                per_minute[(e.at.as_nanos() / 60_000_000_000) as usize] += 1;
            }
            *per_minute.iter().max().unwrap() as f64 / t.len() as f64
        };
        assert!(
            share(&stormy) > share(&calm),
            "burst injection must sharpen the peak minute"
        );
    }
}
