//! Deterministic request generators for the evaluation drivers.

use fireworks_lang::Value;
use fireworks_sim::rng::SplitMix64;

/// Generates Alexa utterances covering all three skills, with varying
/// slot values (the paper notes the Alexa scenario exercises varied
/// argument types — door passwords, schedule details — which can trigger
/// JIT de-optimisation).
#[derive(Debug)]
pub struct AlexaRequestGen {
    rng: SplitMix64,
}

impl AlexaRequestGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        AlexaRequestGen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Next utterance.
    pub fn next_utterance(&mut self) -> String {
        let items = ["milk", "keys", "report", "tickets", "badge"];
        let places = ["kitchen", "office", "car", "desk", "hall"];
        let devices = ["light", "door", "tv"];
        match self.rng.next_below(3) {
            0 => format!("alexa tell me a fact number {}", self.rng.next_below(1000)),
            1 => format!(
                "alexa remind me to fetch {} {}",
                self.rng.choose(&items),
                self.rng.choose(&places)
            ),
            _ => format!("alexa toggle the {}", self.rng.choose(&devices)),
        }
    }
}

/// Generates wage records for the Data Analysis application.
#[derive(Debug)]
pub struct WageRecordGen {
    rng: SplitMix64,
    next_id: u64,
}

impl WageRecordGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        WageRecordGen {
            rng: SplitMix64::new(seed),
            next_id: 0,
        }
    }

    /// Next wage record.
    pub fn next_record(&mut self) -> Value {
        let names = ["alice", "bob", "carol", "dave", "erin", "frank"];
        let roles = ["dev", "ops", "manager"];
        let id = self.next_id;
        self.next_id += 1;
        Value::map([
            ("name".to_string(), Value::str(*self.rng.choose(&names))),
            ("id".to_string(), Value::str(format!("e-{id}"))),
            ("role".to_string(), Value::str(*self.rng.choose(&roles))),
            (
                "base".to_string(),
                Value::Int(self.rng.next_range(3_000, 12_000) as i64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utterances_are_deterministic_per_seed() {
        let mut a = AlexaRequestGen::new(7);
        let mut b = AlexaRequestGen::new(7);
        for _ in 0..20 {
            assert_eq!(a.next_utterance(), b.next_utterance());
        }
    }

    #[test]
    fn utterances_cover_all_intents() {
        let mut gen = AlexaRequestGen::new(1);
        let mut fact = false;
        let mut reminder = false;
        let mut smart = false;
        for _ in 0..100 {
            let u = gen.next_utterance();
            fact |= u.contains("fact");
            reminder |= u.contains("remind");
            smart |= u.contains("light") || u.contains("door") || u.contains("tv");
        }
        assert!(fact && reminder && smart);
    }

    #[test]
    fn wage_records_have_unique_ids_and_valid_shape() {
        let mut gen = WageRecordGen::new(3);
        let mut ids = std::collections::HashSet::new();
        for _ in 0..50 {
            let rec = gen.next_record();
            let Value::Map(m) = &rec else { panic!("map") };
            let m = m.borrow();
            let Value::Str(id) = &m["id"] else {
                panic!("id")
            };
            assert!(ids.insert(id.to_string()));
            let Value::Int(base) = m["base"] else {
                panic!("base")
            };
            assert!((3_000..=12_000).contains(&base));
        }
    }
}
