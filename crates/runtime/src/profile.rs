//! Calibrated language-runtime profiles.

use fireworks_lang::{ExecStats, JitPolicy};
use fireworks_sim::{Clock, Nanos};

/// Which real-world runtime a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Node.js on V8 (auto tier-up, lazy execution state).
    NodeLike,
    /// CPython, optionally with Numba annotation-driven JIT.
    PythonLike,
}

impl RuntimeKind {
    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::NodeLike => "nodejs",
            RuntimeKind::PythonLike => "python",
        }
    }
}

/// Cost and memory model of one language runtime.
///
/// Time constants are calibrated so the cross-platform ratios of the
/// paper's Figs. 6/7/11 emerge: the Python interpreter is ~5× slower per
/// op than Node's, JITted code is ~5× (Node) and ~20× (Python/Numba)
/// faster than the respective interpreters, and Numba compilation is much
/// more expensive than V8 tier-up.
#[derive(Debug, Clone)]
pub struct RuntimeProfile {
    /// Which runtime this models.
    pub kind: RuntimeKind,
    /// Launching the runtime process (interpreter boot, stdlib init).
    pub launch_time: Nanos,
    /// Fixed part of loading the serverless function into the runtime.
    pub app_load_base: Nanos,
    /// Per-bytecode-op cost of parsing/compiling the function at load.
    pub app_load_per_op: Nanos,
    /// Virtual time per op retired in the interpreter tier.
    pub interp_op: Nanos,
    /// Virtual time per op retired in the quickened (baseline compiled)
    /// tier — what organically warmed code runs at.
    pub quick_op: Nanos,
    /// Virtual time per op retired in the optimized (top) tier — what
    /// forced post-JIT code runs at.
    pub jit_op: Nanos,
    /// Virtual time per bytecode op fed to the JIT compiler.
    pub compile_per_op: Nanos,
    /// Fixed cost of one deoptimisation (frame reconstruction).
    pub deopt_cost: Nanos,
    /// Cost of one inline-cache miss on a property access (shape lookup,
    /// cache update, slow-path dictionary probe). Hits are already folded
    /// into the per-op tier costs; only misses are surcharged.
    pub ic_miss_cost: Nanos,
    /// Per host-call dispatch overhead inside the runtime (marshalling).
    pub host_call_dispatch: Nanos,
    /// The tier-up policy the runtime uses out of the box.
    pub default_policy: JitPolicy,

    // ---- memory model ----------------------------------------------------
    /// Resident bytes of the runtime right after launch (binary, stdlib,
    /// initial heap).
    pub base_image_bytes: u64,
    /// Resident bytes per loaded bytecode op (code objects, ASTs).
    pub code_bytes_per_op: u64,
    /// Machine-code bytes emitted per bytecode op compiled.
    pub jit_code_bytes_per_op: u64,
    /// How many copies of each JITted function end up resident. 1 for
    /// V8; more for Numba, which duplicates functions per module under
    /// LLVM MCJIT (paper §5.5.2, citation 35).
    pub jit_code_duplication: u32,
    /// Bytes of execution state dirtied by every invocation regardless of
    /// workload (argument buffers, scratch allocations, GC nursery).
    pub exec_state_bytes: u64,
    /// Bytes of lazily allocated first-run state: feedback vectors, lazily
    /// compiled bytecode, inline caches. Allocated the first time the
    /// function executes in a runtime instance — so a *post-JIT* snapshot
    /// carries it (shared), while an OS-level snapshot leaves each clone
    /// to allocate it privately (the V8 "lazy allocation" effect behind
    /// the paper's Fig. 12 Node.js result).
    pub first_run_state_bytes: u64,
    /// GC churn: bytes of heap arena rewritten per million guest ops
    /// retired. Long-running executions dirty progressively more memory,
    /// which bounds snapshot sharing in the paper's Fig. 10 sweep.
    pub gc_churn_bytes_per_mops: u64,
    /// Framework (request-handling) ops executed once, interpreted, the
    /// first time this runtime instance serves a request: HTTP stack
    /// initialisation, route setup, lazy module loads. A post-JIT snapshot
    /// carries this warm-up; OS-level snapshots and cold boots pay it —
    /// the effect behind the paper's Fig. 11 I/O-benchmark bars ("JIT
    /// compilation was triggered near the end of function execution").
    pub framework_cold_ops: u64,
    /// Framework ops executed on *every* request (request parsing,
    /// response serialisation).
    pub framework_ops: u64,
}

impl RuntimeProfile {
    /// The Node.js/V8 profile.
    pub fn node() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::NodeLike,
            launch_time: Nanos::from_millis(820),
            app_load_base: Nanos::from_millis(90),
            app_load_per_op: Nanos::from_micros(14),
            interp_op: Nanos::from_nanos(42),
            // Warm code that tiered up organically sits ~25% above the
            // top tier (paper §5.2.1: Fireworks exec ~25% faster than
            // warm starts).
            quick_op: Nanos::from_nanos(11),
            jit_op: Nanos::from_nanos(9),
            compile_per_op: Nanos::from_micros(6),
            deopt_cost: Nanos::from_micros(35),
            // V8 megamorphic/miss path: hashed stub-cache probe then
            // dictionary lookup.
            ic_miss_cost: Nanos::from_nanos(120),
            host_call_dispatch: Nanos::from_micros(4),
            // V8 requires real heat before optimizing: a cold run spends a
            // visible fraction of a serverless-scale execution in the
            // interpreter (the paper's ~38% cold / ~25% warm exec gap).
            default_policy: JitPolicy::HotSpot {
                call_threshold: 150,
                loop_threshold: 120_000,
            },
            base_image_bytes: 56 << 20,
            code_bytes_per_op: 160,
            jit_code_bytes_per_op: 72,
            jit_code_duplication: 1,
            // V8's lazy allocation keeps the per-invocation dirty state
            // small ("A lighter V8", paper §5.5.2).
            exec_state_bytes: 3 << 20,
            first_run_state_bytes: 22 << 20,
            gc_churn_bytes_per_mops: 2 << 20,
            framework_cold_ops: 300_000,
            framework_ops: 100_000,
        }
    }

    /// The profile for a [`RuntimeKind`].
    pub fn for_kind(kind: RuntimeKind) -> Self {
        match kind {
            RuntimeKind::NodeLike => RuntimeProfile::node(),
            RuntimeKind::PythonLike => RuntimeProfile::python(),
        }
    }

    /// The CPython profile (no JIT by default).
    pub fn python() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::PythonLike,
            launch_time: Nanos::from_millis(340),
            app_load_base: Nanos::from_millis(60),
            app_load_per_op: Nanos::from_micros(10),
            interp_op: Nanos::from_nanos(210),
            // CPython has no baseline JIT; the quick tier only exists for
            // Numba-compiled code on its way to nopython mode.
            quick_op: Nanos::from_nanos(24),
            jit_op: Nanos::from_nanos(10),
            // Numba/LLVM compilation is far more expensive than V8
            // quickening.
            compile_per_op: Nanos::from_micros(240),
            deopt_cost: Nanos::from_micros(60),
            // Every CPython attribute miss is a full dict probe chain
            // (instance, type, MRO) — far pricier than V8's stub cache.
            ic_miss_cost: Nanos::from_nanos(300),
            host_call_dispatch: Nanos::from_micros(6),
            default_policy: JitPolicy::Off,
            base_image_bytes: 38 << 20,
            code_bytes_per_op: 120,
            jit_code_bytes_per_op: 200,
            // LLVM MCJIT module duplication (paper §5.5.2).
            jit_code_duplication: 5,
            exec_state_bytes: 11 << 20,
            first_run_state_bytes: 6 << 20,
            gc_churn_bytes_per_mops: 4 << 20,
            framework_cold_ops: 150_000,
            framework_ops: 60_000,
        }
    }

    /// The policy used when Fireworks installs an annotated function:
    /// compile `@jit`-annotated functions eagerly on first call.
    pub fn annotated_policy(&self) -> JitPolicy {
        JitPolicy::AnnotatedEager
    }

    /// Converts execution counters into virtual time and charges it on
    /// `clock`, returning the total charged.
    pub fn charge(&self, clock: &Clock, stats: &ExecStats) -> Nanos {
        let mut total = Nanos::ZERO;
        total += self.interp_op * stats.interp_ops;
        total += self.quick_op * (stats.jit_ops - stats.opt_ops);
        total += self.jit_op * stats.opt_ops;
        total += self.compile_per_op * stats.compile_ops;
        total += self.deopt_cost * stats.deopts;
        total += self.ic_miss_cost * stats.ic_misses;
        total += self.host_call_dispatch * stats.host_calls;
        clock.advance(total);
        total
    }

    /// Virtual time to load a program of `ops` bytecode ops into the
    /// runtime (parse + bytecode compile + module init).
    pub fn app_load_time(&self, ops: usize) -> Nanos {
        self.app_load_base + self.app_load_per_op * (ops as u64)
    }

    /// Per-request framework overhead. `warm` is whether this runtime
    /// instance has served a request before (or inherited that state from
    /// a post-JIT snapshot). The steady path runs JIT-compiled on
    /// tier-up-capable runtimes and interpreted on CPython.
    pub fn request_overhead(&self, warm: bool) -> Nanos {
        let steady_rate = match self.kind {
            RuntimeKind::NodeLike if warm => self.jit_op,
            _ => self.interp_op,
        };
        let mut t = steady_rate * self.framework_ops;
        if !warm {
            t += self.interp_op * self.framework_cold_ops;
        }
        t
    }

    /// Resident JIT-code bytes for `compiled_ops` quickened ops, including
    /// the duplication factor.
    pub fn jit_code_bytes(&self, compiled_ops: usize) -> u64 {
        self.jit_code_bytes_per_op * compiled_ops as u64 * u64::from(self.jit_code_duplication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn python_interpreter_is_much_slower_than_node() {
        let node = RuntimeProfile::node();
        let py = RuntimeProfile::python();
        let ratio = py.interp_op.as_nanos() as f64 / node.interp_op.as_nanos() as f64;
        assert!(ratio > 3.0, "CPython/V8 interpreter gap, got {ratio}");
    }

    #[test]
    fn jit_speedup_ratios_match_paper_shape() {
        let node = RuntimeProfile::node();
        let py = RuntimeProfile::python();
        // Node JIT ≈ 4–6× its interpreter; Python/Numba ≈ 15–25×.
        let node_speedup = node.interp_op.as_nanos() as f64 / node.jit_op.as_nanos() as f64;
        let py_speedup = py.interp_op.as_nanos() as f64 / py.jit_op.as_nanos() as f64;
        assert!((3.0..8.0).contains(&node_speedup), "{node_speedup}");
        assert!((12.0..30.0).contains(&py_speedup), "{py_speedup}");
    }

    #[test]
    fn numba_compile_is_much_more_expensive() {
        let node = RuntimeProfile::node();
        let py = RuntimeProfile::python();
        assert!(py.compile_per_op.as_nanos() > 10 * node.compile_per_op.as_nanos());
    }

    #[test]
    fn charge_accumulates_all_components() {
        let clock = Clock::new();
        let p = RuntimeProfile::node();
        let stats = ExecStats {
            interp_ops: 1000,
            jit_ops: 5000,
            opt_ops: 2000,
            compiles: 2,
            compile_ops: 300,
            deopts: 1,
            calls: 10,
            host_calls: 4,
            builtin_calls: 7,
            ic_hits: 90,
            ic_misses: 12,
            code_evictions: 1,
        };
        let t = p.charge(&clock, &stats);
        assert_eq!(clock.now(), t);
        let expected = p.interp_op * 1000
            + p.quick_op * 3000
            + p.jit_op * 2000
            + p.compile_per_op * 300
            + p.deopt_cost * 1
            + p.ic_miss_cost * 12
            + p.host_call_dispatch * 4;
        assert_eq!(t, expected);
    }

    #[test]
    fn python_duplicates_jit_code() {
        let py = RuntimeProfile::python();
        let node = RuntimeProfile::node();
        // Same compiled size → much larger resident JIT code on Python.
        assert!(py.jit_code_bytes(1000) > 5 * node.jit_code_bytes(1000));
    }

    #[test]
    fn default_policies_match_runtimes() {
        assert!(matches!(
            RuntimeProfile::node().default_policy,
            JitPolicy::HotSpot { .. }
        ));
        assert_eq!(RuntimeProfile::python().default_policy, JitPolicy::Off);
    }
}
