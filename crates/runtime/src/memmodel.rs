//! Laying a runtime's memory out in a guest address space.
//!
//! The memory-density results (paper §5.4, §5.5.2) depend on *which pages
//! of guest memory change after restore*. This module gives each region of
//! the runtime a fixed home in guest-physical memory and materialises or
//! dirties it in an [`AddressSpace`], so snapshot sharing and CoW are
//! accounted at page granularity:
//!
//! | region       | contents                                | after restore     |
//! |--------------|------------------------------------------|------------------|
//! | OS           | guest kernel + userspace (microVM layer) | shared            |
//! | runtime base | interpreter binary, stdlib, initial heap | shared            |
//! | app code     | loaded bytecode / code objects           | shared            |
//! | JIT code     | quickened machine code (× duplication)   | shared            |
//! | heap         | live guest values                        | partially dirtied |
//! | exec state   | per-invocation scratch                   | fully dirtied     |

use fireworks_guestmem::AddressSpace;

use crate::guest::GuestRuntime;

/// Fixed guest-physical bases for the runtime regions (the OS owns
/// everything below [`MemoryModel::RUNTIME_BASE`]).
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Fraction of the heap rewritten by a typical invocation.
    pub heap_dirty_fraction: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            heap_dirty_fraction: 0.35,
        }
    }
}

impl MemoryModel {
    /// Base of the runtime image region.
    pub const RUNTIME_BASE: u64 = 96 << 20;
    /// Base of the app bytecode region.
    pub const APP_CODE_BASE: u64 = 160 << 20;
    /// Base of the JIT code cache region.
    pub const JIT_CODE_BASE: u64 = 176 << 20;
    /// Base of the guest heap region.
    pub const HEAP_BASE: u64 = 208 << 20;
    /// Base of the per-invocation execution-state region.
    pub const EXEC_STATE_BASE: u64 = 272 << 20;
    /// Base of the lazily allocated first-run state region.
    pub const FIRST_RUN_BASE: u64 = 296 << 20;
    /// Base of the GC-churn arena (extends to the end of guest memory).
    pub const CHURN_BASE: u64 = 320 << 20;
    /// Size cap of the GC-churn arena.
    pub const CHURN_ARENA: u64 = 184 << 20;

    /// Bytes of the churn arena rewritten after `ops` retired guest ops
    /// under `profile`.
    pub fn churn_bytes(profile: &crate::profile::RuntimeProfile, ops: u64) -> u64 {
        let churn = (ops as u128 * profile.gc_churn_bytes_per_mops as u128 / 1_000_000) as u64;
        churn.min(Self::CHURN_ARENA)
    }

    /// Materialises the runtime's current resident regions in `space`
    /// (called after launch+load, and again after JIT activity to extend
    /// the code region). Pages are dirtied, so a later snapshot captures
    /// them.
    pub fn materialize(&self, space: &mut AddressSpace, rt: &GuestRuntime) {
        let p = rt.profile();
        space.touch_dirty(Self::RUNTIME_BASE, p.base_image_bytes);
        let code_bytes = p.code_bytes_per_op * rt.program().total_ops() as u64;
        if code_bytes > 0 {
            space.touch_dirty(Self::APP_CODE_BASE, code_bytes);
        }
        let jit_bytes = rt.jit_code_bytes();
        if jit_bytes > 0 {
            space.touch_dirty(Self::JIT_CODE_BASE, jit_bytes);
        }
        let heap = rt.heap_bytes().max(1 << 20);
        space.touch_dirty(Self::HEAP_BASE, heap);
        if rt.first_run_done() {
            space.touch_dirty(Self::FIRST_RUN_BASE, p.first_run_state_bytes);
        }
        let churn = Self::churn_bytes(p, rt.ops_since_reset());
        if churn > 0 {
            space.touch_dirty(Self::CHURN_BASE, churn);
        }
    }

    /// Dirties the regions an invocation writes: the whole exec-state
    /// region plus a fraction of the heap. Called once per invocation on a
    /// restored clone; this is what limits snapshot sharing.
    pub fn dirty_invocation(&self, space: &mut AddressSpace, rt: &GuestRuntime) {
        let p = rt.profile();
        space.touch_dirty(Self::EXEC_STATE_BASE, p.exec_state_bytes);
        let heap = rt.heap_bytes().max(1 << 20);
        let dirty = (heap as f64 * self.heap_dirty_fraction) as u64;
        if dirty > 0 {
            space.touch_dirty(Self::HEAP_BASE, dirty);
        }
        // First-run state allocated in *this* instance (private in clones
        // restored from pre-execution snapshots); state inherited from a
        // post-JIT snapshot stays shared.
        if rt.first_run_local() {
            space.touch_dirty(Self::FIRST_RUN_BASE, p.first_run_state_bytes);
        }
        // GC churn rewrites the arena from the start, CoW-copying any
        // pages that came shared out of a snapshot.
        let churn = Self::churn_bytes(p, rt.ops_since_reset());
        if churn > 0 {
            space.touch_dirty(Self::CHURN_BASE, churn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::RuntimeProfile;
    use fireworks_guestmem::{HostMemory, SnapshotFile, PAGE_SIZE};
    use fireworks_lang::Value;
    use fireworks_lang::{JitConfig, NoopHost};
    use fireworks_sim::Clock;

    const SRC: &str =
        "fn main(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }";

    fn vm_space(host: &HostMemory) -> AddressSpace {
        AddressSpace::new(host.clone(), 512 << 20)
    }

    #[test]
    fn materialize_covers_runtime_and_code() {
        let clock = Clock::new();
        let host = HostMemory::new(clock.clone(), 4 << 30, 60);
        let mut space = vm_space(&host);
        let rt = GuestRuntime::launch(&clock, RuntimeProfile::node(), SRC, JitConfig::default())
            .expect("ok");
        MemoryModel::default().materialize(&mut space, &rt);
        let expected_min = rt.profile().base_image_bytes / PAGE_SIZE as u64;
        assert!(space.resident_pages() as u64 > expected_min);
    }

    #[test]
    fn invocation_dirty_set_is_much_smaller_than_image() {
        let clock = Clock::new();
        let host = HostMemory::new(clock.clone(), 4 << 30, 60);
        let model = MemoryModel::default();

        let mut space = vm_space(&host);
        let mut rt =
            GuestRuntime::launch(&clock, RuntimeProfile::node(), SRC, JitConfig::default())
                .expect("ok");
        rt.invoke(&clock, "main", vec![Value::Int(1000)], &mut NoopHost)
            .expect("runs");
        model.materialize(&mut space, &rt);
        let image_pages = space.resident_pages();

        // Snapshot, restore a clone, dirty one invocation.
        let snap = SnapshotFile::capture(&space, Vec::new());
        let mut clone_space = snap.restore(&host);
        let before = host.stats().cow_faults;
        model.dirty_invocation(&mut clone_space, &rt);
        let dirtied = host.stats().cow_faults - before;
        assert!(
            (dirtied as usize) < image_pages / 2,
            "dirty set {dirtied} pages vs image {image_pages} pages"
        );
        // The clone's PSS is well below its RSS thanks to sharing.
        assert!(clone_space.pss_bytes() < clone_space.rss_bytes() / 2 * 2);
        assert!(clone_space.pss_bytes() < clone_space.rss_bytes());
    }

    #[test]
    fn python_invocation_dirties_more_than_node() {
        let model = MemoryModel::default();
        // Private pages an invocation adds to a restored clone: CoW'd heap
        // pages plus freshly allocated exec-state pages.
        let dirty_pages = |profile: RuntimeProfile| {
            let clock = Clock::new();
            let host = HostMemory::new(clock.clone(), 4 << 30, 60);
            let mut space = vm_space(&host);
            let rt = GuestRuntime::launch(&clock, profile, SRC, JitConfig::default()).expect("ok");
            model.materialize(&mut space, &rt);
            let snap = SnapshotFile::capture(&space, Vec::new());
            let mut clone = snap.restore(&host);
            let live_before = host.live_frames();
            model.dirty_invocation(&mut clone, &rt);
            host.live_frames() - live_before
        };
        let node = dirty_pages(RuntimeProfile::node());
        let python = dirty_pages(RuntimeProfile::python());
        // Python's exec state (11 MiB) dwarfs Node's lazy 3 MiB.
        assert!(
            python > 2 * node,
            "python dirty {python} !> node dirty {node}"
        );
    }
}
