//! A language runtime instance running inside a sandbox.

use std::rc::Rc;

use fireworks_lang::vm::VmSnapshot;
use fireworks_lang::{
    compile, ExecStats, Host, JitConfig, JitPolicy, LangError, Outcome, Program, Value, Vm,
};
use fireworks_sim::{Clock, Nanos};

use crate::profile::RuntimeProfile;

/// Result of a completed guest entry-point run.
#[derive(Debug, Clone)]
pub struct InvokeResult {
    /// The value returned by the entry function.
    pub value: Value,
    /// Counters accumulated since `start`.
    pub stats: ExecStats,
    /// Virtual execution time charged for those counters.
    pub exec_time: Nanos,
}

/// Why [`GuestRuntime::run`] returned.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The entry function finished.
    Done(InvokeResult),
    /// The program executed `fireworks_snapshot()`. The embedder should
    /// capture [`GuestRuntime::snapshot`] and then call `run` again to
    /// resume (install phase), or treat it as a no-op (already-installed
    /// code paths).
    SnapshotPoint,
}

/// A language-runtime snapshot: the deep-cloned VM state plus the profile.
///
/// This is the runtime-level half of a Fireworks post-JIT snapshot; the
/// microVM layer pairs it with a guest-memory [`fireworks_guestmem::SnapshotFile`].
#[derive(Debug, Clone)]
pub struct RuntimeSnapshot {
    profile: RuntimeProfile,
    vm: VmSnapshot,
    first_run_done: bool,
}

impl RuntimeSnapshot {
    /// Quickened ops resident in the snapshot's JIT cache.
    pub fn jit_code_ops(&self) -> usize {
        self.vm.jit_code_ops()
    }

    /// The profile the snapshot was taken under.
    pub fn profile(&self) -> &RuntimeProfile {
        &self.profile
    }
}

/// A launched language runtime executing one serverless function's code.
#[derive(Debug)]
pub struct GuestRuntime {
    profile: RuntimeProfile,
    program: Rc<Program>,
    vm: Vm,
    pending: ExecStats,
    pending_time: Nanos,
    /// Whether any user entry has completed at least one run in this
    /// runtime instance (drives first-run state allocation).
    first_run_done: bool,
    /// Whether the first run happened *in this instance* (as opposed to
    /// being inherited from a snapshot). Only locally allocated first-run
    /// state dirties private pages; inherited state is read shared.
    first_run_local: bool,
    /// Guest ops retired since this instance was created or restored
    /// (drives the GC-churn dirty set).
    ops_since_reset: u64,
}

impl GuestRuntime {
    /// Launches the runtime and loads `source` into it, charging launch
    /// and app-load time. Does *not* run any code yet (the module body, if
    /// present, runs on first `start`/`run` of `__toplevel__` or is folded
    /// into the entry by the caller).
    ///
    /// `jit` carries the full JIT shape for this instance. A `None`
    /// policy inside it means "use the profile's default tier-up policy";
    /// the code-cache byte cost per compiled op is always taken from the
    /// profile (it models the runtime's code generator, not the
    /// platform's preference).
    pub fn launch(
        clock: &Clock,
        profile: RuntimeProfile,
        source: &str,
        jit: JitConfig,
    ) -> Result<Self, LangError> {
        clock.advance(profile.launch_time);
        let program = Rc::new(compile(source)?);
        clock.advance(profile.app_load_time(program.total_ops()));
        let jit = jit
            .with_policy(Some(jit.policy.unwrap_or(profile.default_policy)))
            .with_code_bytes_per_op(profile.jit_code_bytes_per_op);
        let vm = Vm::with_config(program.clone(), jit);
        Ok(GuestRuntime {
            profile,
            program,
            vm,
            pending: ExecStats::default(),
            pending_time: Nanos::ZERO,
            first_run_done: false,
            first_run_local: false,
            ops_since_reset: 0,
        })
    }

    /// Launches with a bare tier-up policy override.
    #[deprecated(
        since = "0.4.0",
        note = "use `launch` with a `JitConfig` (wrap the policy via \
                `JitConfig::default().with_policy(..)`)"
    )]
    pub fn launch_with_policy(
        clock: &Clock,
        profile: RuntimeProfile,
        source: &str,
        policy: Option<JitPolicy>,
    ) -> Result<Self, LangError> {
        GuestRuntime::launch(
            clock,
            profile,
            source,
            JitConfig::default().with_policy(policy),
        )
    }

    /// Rebuilds a runtime from a snapshot. Charges nothing — the restore
    /// cost is the microVM layer's business.
    pub fn from_snapshot(snapshot: &RuntimeSnapshot) -> Self {
        let vm = Vm::from_snapshot(&snapshot.vm);
        GuestRuntime {
            profile: snapshot.profile.clone(),
            program: vm.program().clone(),
            vm,
            pending: ExecStats::default(),
            pending_time: Nanos::ZERO,
            first_run_done: snapshot.first_run_done,
            first_run_local: false,
            ops_since_reset: 0,
        }
    }

    /// Captures the runtime state (deep clone; JIT code shared immutably).
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            profile: self.profile.clone(),
            vm: self.vm.snapshot_state(),
            first_run_done: self.first_run_done,
        }
    }

    /// Whether any entry has completed a run in this instance.
    pub fn first_run_done(&self) -> bool {
        self.first_run_done
    }

    /// Whether first-run state was allocated in this instance (rather
    /// than inherited, already shared, from a snapshot).
    pub fn first_run_local(&self) -> bool {
        self.first_run_local
    }

    /// Marks the runtime as having served requests (first-run state
    /// allocated here). The Fireworks installer calls this right before
    /// snapshotting: the JIT warm-up has exercised the full request path,
    /// so clones restored from the snapshot start warm.
    pub fn mark_warmed(&mut self) {
        if !self.first_run_done {
            self.first_run_done = true;
            self.first_run_local = true;
        }
    }

    /// Charges the per-request framework overhead (request-handling path
    /// through the guest's HTTP stack) and returns it. Call once per
    /// served request, *before* running the entry.
    pub fn charge_request_overhead(&mut self, clock: &Clock) -> Nanos {
        let t = self.profile.request_overhead(self.first_run_done);
        clock.advance(t);
        // Serving a request warms the framework path even if the entry
        // later errors.
        if !self.first_run_done {
            self.first_run_done = true;
            self.first_run_local = true;
        }
        t
    }

    /// Guest ops retired since this instance was created or restored.
    pub fn ops_since_reset(&self) -> u64 {
        self.ops_since_reset
    }

    /// The runtime's cost/memory profile.
    pub fn profile(&self) -> &RuntimeProfile {
        &self.profile
    }

    /// The loaded program.
    pub fn program(&self) -> &Rc<Program> {
        &self.program
    }

    /// The underlying VM (for assertions in tests and memory modelling).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Whether the VM is suspended mid-run (resumable with [`GuestRuntime::run`]).
    pub fn is_suspended(&self) -> bool {
        self.vm.is_suspended()
    }

    /// Runs the module body (top-level statements), if the program has
    /// one, charging its execution. Must be called before entry functions
    /// that rely on globals.
    pub fn run_toplevel(&mut self, clock: &Clock, host: &mut dyn Host) -> Result<(), LangError> {
        if self
            .program
            .function(fireworks_lang::compiler::TOPLEVEL)
            .is_none()
        {
            return Ok(());
        }
        self.start(fireworks_lang::compiler::TOPLEVEL, Vec::new())?;
        loop {
            match self.run(clock, host)? {
                RunOutcome::Done(_) => return Ok(()),
                RunOutcome::SnapshotPoint => continue,
            }
        }
    }

    /// Prepares the VM to run `entry(args...)`.
    pub fn start(&mut self, entry: &str, args: Vec<Value>) -> Result<(), LangError> {
        self.pending = ExecStats::default();
        self.pending_time = Nanos::ZERO;
        self.vm.start(entry, args)
    }

    /// Sets the invocation timeout: execution aborts with
    /// [`LangError::Timeout`] once the op budget implied by `timeout`
    /// under this profile's JIT-tier op cost is exhausted.
    pub fn set_invocation_timeout(&mut self, timeout: Option<Nanos>) {
        let fuel = timeout.map(|t| {
            let per_op = self.profile.jit_op.as_nanos().max(1);
            t.as_nanos() / per_op
        });
        self.vm.set_fuel(fuel);
    }

    /// Runs until the entry returns or a snapshot point is hit, charging
    /// virtual time for the work done in this slice.
    pub fn run(&mut self, clock: &Clock, host: &mut dyn Host) -> Result<RunOutcome, LangError> {
        // Charge whatever work happened even when the run errored (a
        // timed-out or crashed invocation still consumed its time).
        let outcome = self.vm.run(host);
        let stats = self.vm.take_stats();
        let charged = self.profile.charge(clock, &stats);
        self.pending = self.pending.merge(&stats);
        self.pending_time += charged;
        self.ops_since_reset += stats.total_ops();
        // First-run state (feedback vectors, lazily compiled bytecode) is
        // allocated as soon as user code has executed substantially — in
        // particular it is live at the Fireworks snapshot point, right
        // after the JIT warm-up.
        if self.ops_since_reset > 10_000 && !self.first_run_done {
            self.first_run_done = true;
            self.first_run_local = true;
        }
        match outcome? {
            Outcome::Done(value) => {
                if !self.first_run_done {
                    self.first_run_local = true;
                }
                self.first_run_done = true;
                Ok(RunOutcome::Done(InvokeResult {
                    value,
                    stats: self.pending,
                    exec_time: self.pending_time,
                }))
            }
            Outcome::Snapshot => Ok(RunOutcome::SnapshotPoint),
        }
    }

    /// Convenience: `start` + `run` to completion, resuming through any
    /// snapshot points (treating them as no-ops).
    pub fn invoke(
        &mut self,
        clock: &Clock,
        entry: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<InvokeResult, LangError> {
        self.start(entry, args)?;
        loop {
            match self.run(clock, host)? {
                RunOutcome::Done(result) => return Ok(result),
                RunOutcome::SnapshotPoint => continue,
            }
        }
    }

    /// Resident JIT-code bytes under this runtime's duplication model.
    ///
    /// Uses the VM's budgeted code-cache occupancy (which already charges
    /// `jit_code_bytes_per_op` per compiled op and reflects evictions),
    /// scaled by the runtime's duplication factor.
    pub fn jit_code_bytes(&self) -> u64 {
        self.vm.code_cache_used_bytes() * u64::from(self.profile.jit_code_duplication)
    }

    /// Rough guest-heap footprint of live values.
    pub fn heap_bytes(&self) -> u64 {
        self.vm.heap_bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_lang::NoopHost;

    const SRC: &str = "
        fn work(n) {
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }
        fn main(n) { return work(n); }";

    #[test]
    fn launch_charges_launch_and_load_time() {
        let clock = Clock::new();
        let rt = GuestRuntime::launch(&clock, RuntimeProfile::node(), SRC, JitConfig::default())
            .expect("ok");
        let expected_min = rt.profile().launch_time + rt.profile().app_load_base;
        assert!(clock.now() >= expected_min);
    }

    #[test]
    fn invoke_returns_value_and_charges_time() {
        let clock = Clock::new();
        let mut rt =
            GuestRuntime::launch(&clock, RuntimeProfile::node(), SRC, JitConfig::default())
                .expect("ok");
        let before = clock.now();
        let r = rt
            .invoke(&clock, "main", vec![Value::Int(1000)], &mut NoopHost)
            .expect("runs");
        assert_eq!(r.value, Value::Int(499_500));
        assert!(r.exec_time > Nanos::ZERO);
        assert_eq!(clock.now() - before, r.exec_time);
    }

    #[test]
    fn python_profile_is_slower_than_node_on_the_same_work() {
        let clock_n = Clock::new();
        let mut node =
            GuestRuntime::launch(&clock_n, RuntimeProfile::node(), SRC, JitConfig::default())
                .expect("ok");
        let rn = node
            .invoke(&clock_n, "main", vec![Value::Int(20_000)], &mut NoopHost)
            .expect("runs");

        let clock_p = Clock::new();
        let mut py = GuestRuntime::launch(
            &clock_p,
            RuntimeProfile::python(),
            SRC,
            JitConfig::default(),
        )
        .expect("ok");
        let rp = py
            .invoke(&clock_p, "main", vec![Value::Int(20_000)], &mut NoopHost)
            .expect("runs");

        assert!(
            rp.exec_time.as_nanos() > 3 * rn.exec_time.as_nanos(),
            "python {} vs node {}",
            rp.exec_time,
            rn.exec_time
        );
    }

    #[test]
    fn warm_second_invocation_is_faster_for_node() {
        // First call pays interp + compile; second runs mostly JITted.
        let clock = Clock::new();
        let mut rt =
            GuestRuntime::launch(&clock, RuntimeProfile::node(), SRC, JitConfig::default())
                .expect("ok");
        let cold = rt
            .invoke(&clock, "main", vec![Value::Int(400_000)], &mut NoopHost)
            .expect("runs");
        let warm = rt
            .invoke(&clock, "main", vec![Value::Int(400_000)], &mut NoopHost)
            .expect("runs");
        assert!(
            warm.exec_time.as_nanos() < cold.exec_time.as_nanos(),
            "warm {} !< cold {}",
            warm.exec_time,
            cold.exec_time
        );
        assert_eq!(warm.stats.compiles, 0);
    }

    #[test]
    fn snapshot_point_suspends_and_snapshot_resumes_elsewhere() {
        let clock = Clock::new();
        let src = "
            @jit fn work(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
            fn installer(n) {
                work(n);
                fireworks_snapshot();
                return work(n);
            }";
        let mut rt = GuestRuntime::launch(
            &clock,
            RuntimeProfile::python(),
            src,
            JitConfig::default().with_policy(Some(JitPolicy::AnnotatedEager)),
        )
        .expect("ok");
        rt.start("installer", vec![Value::Int(5_000)])
            .expect("starts");
        let RunOutcome::SnapshotPoint = rt.run(&clock, &mut NoopHost).expect("runs") else {
            panic!("expected snapshot point");
        };
        let snap = rt.snapshot();
        assert!(snap.jit_code_ops() > 0, "post-JIT snapshot carries code");

        // A restored clone resumes after the snapshot point, fully JITted,
        // with zero compile cost.
        let mut clone = GuestRuntime::from_snapshot(&snap);
        let RunOutcome::Done(r) = clone.run(&clock, &mut NoopHost).expect("resumes") else {
            panic!("expected completion");
        };
        assert_eq!(r.value, Value::Int(12_497_500));
        assert_eq!(r.stats.compiles, 0);
        assert!(r.stats.jit_ops > r.stats.interp_ops);
    }

    #[test]
    #[allow(deprecated)]
    fn launch_with_policy_shim_matches_jitconfig_launch() {
        let clock_a = Clock::new();
        let mut a = GuestRuntime::launch_with_policy(
            &clock_a,
            RuntimeProfile::node(),
            SRC,
            Some(JitPolicy::AnnotatedEager),
        )
        .expect("ok");
        let clock_b = Clock::new();
        let mut b = GuestRuntime::launch(
            &clock_b,
            RuntimeProfile::node(),
            SRC,
            JitConfig::default().with_policy(Some(JitPolicy::AnnotatedEager)),
        )
        .expect("ok");
        let ra = a
            .invoke(&clock_a, "main", vec![Value::Int(5_000)], &mut NoopHost)
            .expect("runs");
        let rb = b
            .invoke(&clock_b, "main", vec![Value::Int(5_000)], &mut NoopHost)
            .expect("runs");
        assert_eq!(ra.value, rb.value);
        assert_eq!(ra.exec_time, rb.exec_time);
        assert_eq!(clock_a.now(), clock_b.now());
    }

    #[test]
    fn code_cache_budget_reaches_the_vm() {
        // A starved code cache through the runtime layer: no compiled
        // code is ever resident.
        let clock = Clock::new();
        let src = "@jit fn hot(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
                   fn main(n) { return hot(n); }";
        let mut rt = GuestRuntime::launch(
            &clock,
            RuntimeProfile::node(),
            src,
            JitConfig::default()
                .with_policy(Some(JitPolicy::AnnotatedEager))
                .with_code_cache_capacity_bytes(8),
        )
        .expect("ok");
        rt.invoke(&clock, "main", vec![Value::Int(10_000)], &mut NoopHost)
            .expect("runs");
        assert_eq!(rt.jit_code_bytes(), 0);
        assert_eq!(rt.vm().stats().compiles, 0);
    }

    #[test]
    fn python_jit_code_is_bigger_due_to_duplication() {
        let clock = Clock::new();
        let src = "@jit fn hot(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
                   fn main(n) { return hot(n); }";
        let mut node = GuestRuntime::launch(
            &clock,
            RuntimeProfile::node(),
            src,
            JitConfig::default().with_policy(Some(JitPolicy::AnnotatedEager)),
        )
        .expect("ok");
        let mut py = GuestRuntime::launch(
            &clock,
            RuntimeProfile::python(),
            src,
            JitConfig::default().with_policy(Some(JitPolicy::AnnotatedEager)),
        )
        .expect("ok");
        node.invoke(&clock, "main", vec![Value::Int(10)], &mut NoopHost)
            .expect("runs");
        py.invoke(&clock, "main", vec![Value::Int(10)], &mut NoopHost)
            .expect("runs");
        assert!(py.jit_code_bytes() > 5 * node.jit_code_bytes());
    }
}
