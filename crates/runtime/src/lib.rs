//! Language-runtime profiles for the Fireworks simulation.
//!
//! The paper studies two runtimes with very different JIT behaviour:
//!
//! - **Node.js / V8**: tiers hot functions up automatically and quickly,
//!   allocates execution state lazily ("a lighter V8"), so post-JIT
//!   snapshots help execution time modestly (§5.2.1) but help memory a lot
//!   (§5.5.2).
//! - **CPython (+ Numba)**: no JIT by default — the interpreter is slow —
//!   and annotation-driven Numba compilation, which is expensive, produces
//!   large speedups (up to 80× in §5.2.2), and duplicates JITted code per
//!   module under LLVM MCJIT, so post-JIT snapshots barely help memory
//!   (§5.5.2).
//!
//! [`RuntimeProfile`] captures those differences as calibrated per-op
//! costs, a [`fireworks_lang::JitPolicy`], and a memory model;
//! [`GuestRuntime`] wraps a Flame VM and charges virtual time for launch,
//! app load, execution, JIT compilation, and deopts; [`memmodel`] lays the
//! runtime's regions out in a guest address space so snapshot sharing and
//! CoW dirtying are accounted at page granularity.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod guest;
pub mod memmodel;
pub mod profile;

pub use guest::{GuestRuntime, InvokeResult, RuntimeSnapshot};
pub use memmodel::MemoryModel;
pub use profile::{RuntimeKind, RuntimeProfile};
