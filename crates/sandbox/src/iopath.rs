//! Per-sandbox I/O data paths and their costs.

use std::rc::Rc;

use fireworks_sim::{Clock, CostModel, Nanos};

/// Which data path a sandbox's file I/O takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPathKind {
    /// Host-native I/O (no sandbox) — the floor.
    HostDirect,
    /// Container: overlayfs + chroot, close to host speed (§5.2.1(2)).
    OverlayFs,
    /// MicroVM: virtio-blk emulation in the VMM.
    VirtioBlk,
    /// gVisor: seccomp trap into Sentry, file service via Gofer.
    GvisorGofer,
}

/// Charges I/O and syscall costs for one sandbox's data path.
#[derive(Debug, Clone)]
pub struct IoPath {
    kind: IoPathKind,
    costs: Rc<CostModel>,
}

impl IoPath {
    /// Creates a charger for `kind` under the given cost table.
    pub fn new(kind: IoPathKind, costs: Rc<CostModel>) -> Self {
        IoPath { kind, costs }
    }

    /// The path kind.
    pub fn kind(&self) -> IoPathKind {
        self.kind
    }

    /// Cost of one disk I/O of `kib` KiB on this path.
    pub fn disk_io_cost(&self, kib: u64) -> Nanos {
        let d = &self.costs.disk;
        let base = match self.kind {
            IoPathKind::HostDirect => d.host_direct,
            IoPathKind::OverlayFs => d.overlayfs,
            IoPathKind::VirtioBlk => d.virtio_blk,
            IoPathKind::GvisorGofer => d.gvisor,
        };
        let mut t = base + d.per_kib * kib;
        if self.kind == IoPathKind::GvisorGofer {
            // Every file I/O also pays the Sentry → Gofer round trip.
            t += self.costs.gvisor.gofer_io;
        }
        t
    }

    /// Charges one disk I/O and returns the cost.
    pub fn charge_disk_io(&self, clock: &Clock, kib: u64) -> Nanos {
        let t = self.disk_io_cost(kib);
        clock.advance(t);
        t
    }

    /// Charges `n` disk I/Os of `kib` each.
    pub fn charge_disk_ios(&self, clock: &Clock, n: u64, kib: u64) -> Nanos {
        let t = self.disk_io_cost(kib).saturating_mul(n);
        clock.advance(t);
        t
    }

    /// Extra cost a generic syscall pays on this path (only gVisor
    /// intercepts every syscall).
    pub fn syscall_cost(&self) -> Nanos {
        match self.kind {
            IoPathKind::GvisorGofer => self.costs.gvisor.syscall_intercept,
            _ => Nanos::ZERO,
        }
    }

    /// Charges `n` generic syscalls.
    pub fn charge_syscalls(&self, clock: &Clock, n: u64) -> Nanos {
        let t = self.syscall_cost().saturating_mul(n);
        clock.advance(t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(kind: IoPathKind) -> IoPath {
        IoPath::new(kind, Rc::new(CostModel::default()))
    }

    #[test]
    fn disk_path_ordering_matches_paper() {
        // §5.2.1(2): containers (overlayfs) beat microVMs (virtio), and
        // gVisor is slowest.
        let host = path(IoPathKind::HostDirect).disk_io_cost(10);
        let overlay = path(IoPathKind::OverlayFs).disk_io_cost(10);
        let virtio = path(IoPathKind::VirtioBlk).disk_io_cost(10);
        let gvisor = path(IoPathKind::GvisorGofer).disk_io_cost(10);
        assert!(host < overlay);
        assert!(overlay < virtio);
        assert!(virtio < gvisor);
        // gVisor I/O is several times the microVM cost.
        assert!(gvisor.as_nanos() > 3 * virtio.as_nanos());
    }

    #[test]
    fn only_gvisor_pays_syscall_interception() {
        assert_eq!(path(IoPathKind::OverlayFs).syscall_cost(), Nanos::ZERO);
        assert_eq!(path(IoPathKind::VirtioBlk).syscall_cost(), Nanos::ZERO);
        assert!(path(IoPathKind::GvisorGofer).syscall_cost() > Nanos::ZERO);
    }

    #[test]
    fn charges_advance_the_clock() {
        let clock = Clock::new();
        let p = IoPath::new(IoPathKind::VirtioBlk, Rc::new(CostModel::default()));
        let t = p.charge_disk_ios(&clock, 100, 10);
        assert_eq!(clock.now(), t);
        assert_eq!(t, p.disk_io_cost(10) * 100);
    }
}
