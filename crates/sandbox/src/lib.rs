//! Sandboxes and their data paths.
//!
//! The paper compares four sandboxing approaches (Table 1): plain
//! containers (OpenWhisk), secure containers (gVisor's Sentry + Gofer),
//! microVMs (Firecracker/Fireworks), and shared runtimes (Cloudflare
//! Workers). They differ in three measurable ways reproduced here:
//!
//! - **isolation level** ([`IsolationLevel`], ordered),
//! - **start pipeline** ([`ContainerManager`] charges create/start or
//!   Sentry/Gofer boot; the microVM pipeline lives in `fireworks-microvm`),
//! - **I/O path cost** ([`IoPath`]): overlayfs < virtio-blk < Sentry+Gofer
//!   per operation, which determines the FaaSdom disk benchmark ordering
//!   (§5.2.1(2)).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod container;
pub mod iopath;

pub use container::{Container, ContainerKind, ContainerManager, ContainerState};
pub use iopath::{IoPath, IoPathKind};

/// How strongly a sandbox isolates its tenant, ordered weakest to
/// strongest (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// Shared language runtime (V8 isolates — Cloudflare Workers).
    RuntimeOnly,
    /// OS container sharing the host kernel (OpenWhisk).
    Container,
    /// Container behind a user-space kernel (gVisor).
    SecureContainer,
    /// Hardware-virtualised microVM (Firecracker, Fireworks).
    Vm,
}

impl IsolationLevel {
    /// Table-1 style label.
    pub fn label(self) -> &'static str {
        match self {
            IsolationLevel::RuntimeOnly => "Low (runtime)",
            IsolationLevel::Container => "Medium (container)",
            IsolationLevel::SecureContainer => "Medium (secure container)",
            IsolationLevel::Vm => "High (VM)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_ordering_matches_table_1() {
        assert!(IsolationLevel::Vm > IsolationLevel::SecureContainer);
        assert!(IsolationLevel::SecureContainer > IsolationLevel::Container);
        assert!(IsolationLevel::Container > IsolationLevel::RuntimeOnly);
        assert_eq!(IsolationLevel::Vm.label(), "High (VM)");
    }
}
