//! Container sandboxes: plain (OpenWhisk/Docker) and secure (gVisor),
//! with gVisor-style process checkpoints (the paper's Table 1 credits
//! gVisor with snapshot-based starts, as Catalyzer does).

use std::rc::Rc;

use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile};
use fireworks_lang::{JitConfig, LangError};
use fireworks_runtime::{GuestRuntime, MemoryModel, RuntimeProfile, RuntimeSnapshot};
use fireworks_sim::{Clock, CostModel, Nanos};

use crate::iopath::{IoPath, IoPathKind};
use crate::IsolationLevel;

/// Flavour of container sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerKind {
    /// Plain Linux container (OpenWhisk action container).
    Plain,
    /// gVisor sandbox: container behind Sentry + Gofer.
    Gvisor,
}

impl ContainerKind {
    /// The isolation level this kind provides.
    pub fn isolation(self) -> IsolationLevel {
        match self {
            ContainerKind::Plain => IsolationLevel::Container,
            ContainerKind::Gvisor => IsolationLevel::SecureContainer,
        }
    }

    /// The I/O path this kind's file operations take.
    pub fn io_path_kind(self) -> IoPathKind {
        match self {
            ContainerKind::Plain => IoPathKind::OverlayFs,
            ContainerKind::Gvisor => IoPathKind::GvisorGofer,
        }
    }
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created and running.
    Running,
    /// Kept warm in memory, detached.
    Paused,
}

/// One container sandbox with a language runtime inside.
#[derive(Debug)]
pub struct Container {
    id: u64,
    kind: ContainerKind,
    state: ContainerState,
    space: AddressSpace,
    runtime: Option<GuestRuntime>,
    io: IoPath,
    create_time: Nanos,
}

impl Container {
    /// The container's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The container's kind.
    pub fn kind(&self) -> ContainerKind {
        self.kind
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Virtual time spent creating/starting this container (and its
    /// runtime).
    pub fn create_time(&self) -> Nanos {
        self.create_time
    }

    /// The I/O path charger for this sandbox.
    pub fn io(&self) -> &IoPath {
        &self.io
    }

    /// The runtime, if launched.
    pub fn runtime(&self) -> Option<&GuestRuntime> {
        self.runtime.as_ref()
    }

    /// Mutable runtime access.
    pub fn runtime_mut(&mut self) -> Option<&mut GuestRuntime> {
        self.runtime.as_mut()
    }

    /// Resident set size of the container's memory.
    pub fn rss_bytes(&self) -> u64 {
        self.space.rss_bytes()
    }

    /// Proportional set size of the container's memory.
    pub fn pss_bytes(&self) -> u64 {
        self.space.pss_bytes()
    }

    /// Accounts runtime memory growth (JIT code, heap) in the container's
    /// address space.
    pub fn sync_runtime_memory(&mut self) {
        let Some(rt) = &self.runtime else { return };
        MemoryModel::default().materialize(&mut self.space, rt);
    }
}

/// A gVisor-style process checkpoint of a container: the Sentry's memory
/// image (shared copy-on-write by restores) plus the runtime state.
#[derive(Debug)]
pub struct ContainerCheckpoint {
    kind: ContainerKind,
    mem: SnapshotFile,
    runtime: Option<Rc<RuntimeSnapshot>>,
}

impl ContainerCheckpoint {
    /// Pages captured in the checkpoint image.
    pub fn pages(&self) -> usize {
        self.mem.pages()
    }

    /// On-disk size of the checkpoint.
    pub fn file_bytes(&self) -> u64 {
        self.mem.file_bytes()
    }
}

/// Creates and manages container sandboxes, charging platform costs.
#[derive(Debug)]
pub struct ContainerManager {
    clock: Clock,
    costs: Rc<CostModel>,
    host_mem: HostMemory,
    next_id: u64,
}

impl ContainerManager {
    /// Creates a manager allocating container memory from `host_mem`.
    pub fn new(clock: Clock, costs: Rc<CostModel>, host_mem: HostMemory) -> Self {
        ContainerManager {
            clock,
            costs,
            host_mem,
            next_id: 1,
        }
    }

    /// The virtual clock operations charge against.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Creates and starts a container of `kind`, launching `profile` with
    /// `source` inside it. This is the cold-start path.
    pub fn create(
        &mut self,
        kind: ContainerKind,
        profile: RuntimeProfile,
        source: &str,
        jit: JitConfig,
    ) -> Result<Container, LangError> {
        let start = self.clock.now();
        match kind {
            ContainerKind::Plain => {
                self.clock.advance(self.costs.container.container_create);
                self.clock.advance(self.costs.container.container_start);
            }
            ContainerKind::Gvisor => {
                self.clock.advance(self.costs.container.container_create);
                self.clock.advance(self.costs.gvisor.sentry_boot);
                self.clock.advance(self.costs.gvisor.gofer_start);
            }
        }
        let runtime = GuestRuntime::launch(&self.clock, profile, source, jit)?;
        let id = self.next_id;
        self.next_id += 1;
        let mut container = Container {
            id,
            kind,
            state: ContainerState::Running,
            space: AddressSpace::new(self.host_mem.clone(), 512 << 20),
            runtime: Some(runtime),
            io: IoPath::new(kind.io_path_kind(), self.costs.clone()),
            create_time: Nanos::ZERO,
        };
        container.sync_runtime_memory();
        container.create_time = self.clock.now() - start;
        Ok(container)
    }

    /// Pauses a container, keeping it warm in memory.
    pub fn pause(&mut self, c: &mut Container) {
        assert_eq!(c.state, ContainerState::Running);
        c.state = ContainerState::Paused;
    }

    /// Re-attaches a kept-warm container — the warm-start path.
    pub fn warm_attach(&mut self, c: &mut Container) {
        assert_eq!(
            c.state,
            ContainerState::Paused,
            "warm attach needs a paused container"
        );
        let cost = match c.kind {
            ContainerKind::Plain => self.costs.container.warm_attach,
            ContainerKind::Gvisor => self.costs.gvisor.warm_attach,
        };
        self.clock.advance(cost);
        c.state = ContainerState::Running;
    }

    /// Writes a gVisor-style process checkpoint of a container, charging
    /// per resident page.
    pub fn checkpoint(&mut self, c: &mut Container) -> ContainerCheckpoint {
        c.sync_runtime_memory();
        self.clock.advance(self.costs.gvisor.checkpoint_base);
        self.clock
            .advance(self.costs.gvisor.checkpoint_write_per_page * c.space.resident_pages() as u64);
        ContainerCheckpoint {
            kind: c.kind,
            mem: SnapshotFile::capture(&c.space, Vec::new()),
            runtime: c.runtime.as_ref().map(|r| Rc::new(r.snapshot())),
        }
    }

    /// Restores a checkpoint into a fresh container, mapping the image
    /// copy-on-write shared (Table 1's gVisor "High (snapshot)" memory
    /// column).
    pub fn restore(&mut self, checkpoint: &ContainerCheckpoint) -> Container {
        self.clock.advance(self.costs.gvisor.restore_base);
        self.clock
            .advance(self.costs.gvisor.restore_map_per_page * checkpoint.mem.pages() as u64);
        let id = self.next_id;
        self.next_id += 1;
        Container {
            id,
            kind: checkpoint.kind,
            state: ContainerState::Running,
            space: checkpoint.mem.restore(&self.host_mem),
            runtime: checkpoint
                .runtime
                .as_ref()
                .map(|r| GuestRuntime::from_snapshot(r)),
            io: IoPath::new(checkpoint.kind.io_path_kind(), self.costs.clone()),
            create_time: Nanos::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_lang::{NoopHost, Value};

    const SRC: &str =
        "fn main(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }";

    fn manager() -> ContainerManager {
        let clock = Clock::new();
        let host = HostMemory::new(clock.clone(), 8 << 30, 60);
        ContainerManager::new(clock, Rc::new(CostModel::default()), host)
    }

    #[test]
    fn plain_cold_start_is_faster_than_gvisor() {
        let mut mgr = manager();
        let plain = mgr
            .create(
                ContainerKind::Plain,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("plain");
        let gvisor = mgr
            .create(
                ContainerKind::Gvisor,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("gvisor");
        assert!(
            plain.create_time() < gvisor.create_time(),
            "plain {} vs gvisor {}",
            plain.create_time(),
            gvisor.create_time()
        );
    }

    #[test]
    fn warm_attach_is_far_cheaper_than_create() {
        let mut mgr = manager();
        let mut c = mgr
            .create(
                ContainerKind::Plain,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("creates");
        mgr.pause(&mut c);
        let before = mgr.clock().now();
        mgr.warm_attach(&mut c);
        let warm = mgr.clock().now() - before;
        assert!(warm.as_nanos() * 5 < c.create_time().as_nanos());
        assert_eq!(c.state(), ContainerState::Running);
    }

    #[test]
    fn runtime_executes_inside_container() {
        let mut mgr = manager();
        let mut c = mgr
            .create(
                ContainerKind::Plain,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("creates");
        let clock = mgr.clock().clone();
        let r = c
            .runtime_mut()
            .expect("runtime")
            .invoke(&clock, "main", vec![Value::Int(100)], &mut NoopHost)
            .expect("runs");
        assert_eq!(r.value, Value::Int(4950));
    }

    #[test]
    fn kinds_map_to_isolation_and_io_paths() {
        assert_eq!(ContainerKind::Plain.isolation(), IsolationLevel::Container);
        assert_eq!(
            ContainerKind::Gvisor.isolation(),
            IsolationLevel::SecureContainer
        );
        assert_eq!(ContainerKind::Plain.io_path_kind(), IoPathKind::OverlayFs);
        assert_eq!(
            ContainerKind::Gvisor.io_path_kind(),
            IoPathKind::GvisorGofer
        );
    }

    #[test]
    fn checkpoint_restore_is_fast_and_shares_memory() {
        let mut mgr = manager();
        let mut c = mgr
            .create(
                ContainerKind::Gvisor,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("creates");
        let cold_time = c.create_time();
        let ckpt = mgr.checkpoint(&mut c);
        assert!(ckpt.pages() > 10_000);

        let before = mgr.clock().now();
        let a = mgr.restore(&ckpt);
        let restore_time = mgr.clock().now() - before;
        assert!(
            restore_time.as_nanos() * 5 < cold_time.as_nanos(),
            "restore {restore_time} vs cold {cold_time}"
        );
        // Two restores share the image copy-on-write.
        let b = mgr.restore(&ckpt);
        assert!(a.pss_bytes() <= a.rss_bytes() / 2 + 4096);
        assert_eq!(a.rss_bytes(), b.rss_bytes());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn restored_container_executes_the_loaded_function() {
        let mut mgr = manager();
        let mut c = mgr
            .create(
                ContainerKind::Gvisor,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("creates");
        let ckpt = mgr.checkpoint(&mut c);
        drop(c);
        let mut restored = mgr.restore(&ckpt);
        let clock = mgr.clock().clone();
        let r = restored
            .runtime_mut()
            .expect("runtime restored")
            .invoke(&clock, "main", vec![Value::Int(10)], &mut NoopHost)
            .expect("runs");
        assert_eq!(r.value, Value::Int(45));
    }

    #[test]
    fn container_memory_is_accounted() {
        let mut mgr = manager();
        let c = mgr
            .create(
                ContainerKind::Plain,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default(),
            )
            .expect("creates");
        // Runtime base image is materialised.
        assert!(c.rss_bytes() > 40 << 20);
    }
}
