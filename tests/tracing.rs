//! End-to-end request tracing: every invocation driven through a
//! cluster — including requests that cross a host crash, a graceful
//! drain migration, or an archive resurrection — yields exactly one
//! causal tree with a single `TraceId`, no orphan spans, and a latency
//! attribution that sums to the request's sojourn.

use std::collections::BTreeMap;

use fireworks::core::cluster::{
    Cluster, ClusterCompletion, ClusterConfig, LeastLoaded, LocalityAffinity,
};
use fireworks::core::elastic::{ElasticCluster, ElasticConfig, ElasticPolicy};
use fireworks::core::engine::EngineRequest;
use fireworks::core::{HostView, Route, SnapshotStorePolicy};
use fireworks::obs::{Event, TraceForest};
use fireworks::prelude::*;

const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn spec(name: &str) -> FunctionSpec {
    FunctionSpec::new(
        name,
        SRC,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(500))]),
    )
}

fn req_at(at: Nanos, name: &str) -> EngineRequest {
    EngineRequest::at(
        at,
        InvokeRequest::new(fid(name), Value::map([("n".to_string(), Value::Int(500))])),
    )
}

/// Root span name per trace id (`request` for invocations, `migration`
/// for drain hand-offs).
fn root_names(events: &[Event]) -> BTreeMap<u64, String> {
    let mut names = BTreeMap::new();
    for e in events {
        if let Event::Span(s) = e {
            if s.parent.is_none() {
                if let Some(t) = s.trace {
                    names.insert(t.raw(), s.name.clone());
                }
            }
        }
    }
    names
}

/// The tracing contract, checked against a run's completions: one tree
/// per request (single `TraceId`), zero orphans, attribution == sojourn,
/// and tree sojourns matching the report's sojourns as multisets.
fn assert_trace_complete(obs: &Obs, now: Nanos, completions: &[ClusterCompletion]) {
    let events = obs.recorder().events();
    let forest = TraceForest::build(&events, now);
    assert!(
        forest.orphans.is_empty(),
        "orphan spans: {:?}",
        forest.orphans
    );
    let roots = root_names(&events);
    let requests: Vec<_> = forest
        .requests
        .iter()
        .filter(|r| roots.get(&r.trace.raw()).map(String::as_str) == Some("request"))
        .collect();
    assert_eq!(
        requests.len(),
        completions.len(),
        "exactly one trace tree per invocation"
    );
    for r in &requests {
        assert_eq!(
            r.attribution.total(),
            r.sojourn,
            "trace {}: attribution must sum to the sojourn",
            r.trace.raw()
        );
    }
    let mut tree_sojourns: Vec<Nanos> = requests.iter().map(|r| r.sojourn).collect();
    let mut report_sojourns: Vec<Nanos> = completions.iter().map(|c| c.sojourn()).collect();
    tree_sojourns.sort_unstable();
    report_sojourns.sort_unstable();
    assert_eq!(
        tree_sojourns, report_sojourns,
        "trace-tree sojourns must match the report's"
    );
}

/// A 4-host cluster where every host crashes at its 3rd service start:
/// requests are displaced, rerouted, and — once the whole fleet is dead
/// — terminally rejected. Each of those journeys must still be one
/// complete trace tree.
#[test]
fn requests_crossing_host_crashes_keep_one_complete_trace() {
    let mut config = ClusterConfig::new(4, 1);
    config.env = EnvConfig {
        fault_plan: FaultPlan::new(42).nth(FaultSite::HostCrash, 3),
        ..EnvConfig::default()
    };
    let mut cluster = Cluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    cluster.install(&spec("f")).expect("installs");
    let start = cluster.clock().now();
    let reqs: Vec<EngineRequest> = (0..40)
        .map(|i| req_at(start + Nanos::from_millis(40) * i, "f"))
        .collect();
    let report = cluster.run(&mut LeastLoaded::new(), &reqs);

    assert!(
        !report.failed_hosts.is_empty(),
        "the fault plan must crash hosts"
    );
    assert!(report.crash_reroutes > 0, "crashes must displace requests");
    let ok = report
        .completions
        .iter()
        .filter(|c| c.result.is_ok())
        .count();
    assert!(ok > 0 && ok < reqs.len(), "mixed outcomes exercised");
    let obs = cluster.obs().clone();
    obs.recorder().finish();
    assert_trace_complete(&obs, cluster.clock().now(), &report.completions);

    // Rejected requests carry the rejection on their root.
    let events = obs.recorder().events();
    let rejected_roots = events
        .iter()
        .filter(|e| match e {
            Event::Span(s) => s.parent.is_none() && s.attrs.iter().any(|(k, _)| *k == "rejected"),
            Event::Instant(_) => false,
        })
        .count();
    assert_eq!(
        rejected_roots,
        report
            .completions
            .iter()
            .filter(|c| c.result.is_err())
            .count(),
        "every failed completion closes its root with a rejected attribute"
    );
}

/// Pins `f` to the lowest-id active host and `g` to the highest-id one
/// (deferring when full) — makes host 0 the sole holder of `f` so its
/// drain must migrate the snapshot.
struct SplitByFunction;

impl Router for SplitByFunction {
    fn name(&self) -> &'static str {
        "split_by_function"
    }
    fn route(&mut self, req: &InvokeRequest, hosts: &[HostView]) -> Route {
        let healthy = hosts.iter().filter(|v| v.healthy);
        let pick = if req.function == fid("g") {
            healthy.max_by_key(|v| v.id)
        } else {
            healthy.min_by_key(|v| v.id)
        };
        match pick {
            Some(v) if v.has_capacity() => Route::Host(v.id),
            _ => Route::Defer,
        }
    }
}

fn dedup_elastic(policy: ElasticPolicy, plan: FaultPlan) -> ElasticCluster<FireworksPlatform> {
    let mut config = ElasticConfig::new(1);
    config.platform = PlatformConfig::builder()
        .snapshot_store(SnapshotStorePolicy::dedup())
        .build();
    config.env.fault_plan = plan;
    config.policy = policy;
    ElasticCluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    })
}

/// A graceful drain hands the sole-held snapshot to a survivor; the
/// hand-off gets its own `migration` control-plane trace and every
/// request trace stays complete across the drain.
#[test]
fn drain_migration_traces_are_complete_and_tagged() {
    let policy = ElasticPolicy {
        min_hosts: 1,
        max_hosts: 2,
        scale_up_queue: 3,
        scale_down_idle_ticks: 2,
        control_interval: Nanos::from_millis(20),
        boot_delay: Nanos::from_millis(20),
        drain_deadline: Nanos::from_secs(5),
        ..ElasticPolicy::default()
    };
    let mut cluster = dedup_elastic(policy, FaultPlan::new(3));
    cluster.install(&spec("f")).expect("installs");
    cluster.install(&spec("g")).expect("installs");
    let mut reqs: Vec<EngineRequest> = (0..6)
        .map(|i| req_at(Nanos::from_millis(1) * i, "f"))
        .collect();
    let g_start = Nanos::from_millis(60);
    for i in 0..30u64 {
        reqs.push(req_at(g_start + Nanos::from_millis(20) * i, "g"));
    }
    reqs.push(req_at(Nanos::from_millis(1_200), "f"));
    let report = cluster.run(&mut SplitByFunction, &reqs);

    assert!(report.completions.iter().all(|c| c.result.is_ok()));
    assert!(report.stats.graceful_drains >= 1, "{:?}", report.stats);
    assert!(report.stats.migrations >= 1, "{:?}", report.stats);
    let obs = cluster.obs().clone();
    obs.recorder().finish();
    let now = cluster.clock().now();
    assert_trace_complete(&obs, now, &report.completions);

    // Drain hand-offs are their own control-plane traces, complete in
    // the same forest.
    let events = obs.recorder().events();
    let forest = TraceForest::build(&events, now);
    let roots = root_names(&events);
    let migrations = forest
        .requests
        .iter()
        .filter(|r| roots.get(&r.trace.raw()).map(String::as_str) == Some("migration"))
        .count();
    assert!(
        migrations as u64 >= report.stats.migrations,
        "each hand-off must yield a migration trace ({migrations} trees, {} migrations)",
        report.stats.migrations
    );
}

/// A function that retires to the archive and resurrects on demand: the
/// comeback request's trace carries the resurrection marker and its
/// delta fetch, and remains a single complete tree.
#[test]
fn archive_resurrection_is_traced_on_the_comeback_request() {
    let policy = ElasticPolicy {
        min_hosts: 1,
        max_hosts: 2,
        control_interval: Nanos::from_millis(50),
        retire_after: Some(Nanos::from_millis(200)),
        ..ElasticPolicy::default()
    };
    let mut cluster = dedup_elastic(policy, FaultPlan::new(9));
    cluster.install(&spec("f")).expect("installs");
    cluster.install(&spec("g")).expect("installs");
    let mut reqs: Vec<EngineRequest> = (0..5)
        .map(|i| req_at(Nanos::from_millis(10) * i, "f"))
        .collect();
    for i in 0..84u64 {
        reqs.push(req_at(Nanos::from_millis(30) * i, "g"));
    }
    let f_return = Nanos::from_millis(2_000);
    for i in 0..3u64 {
        reqs.push(req_at(f_return + Nanos::from_millis(10) * i, "f"));
    }
    reqs.sort_by_key(|r| r.arrival);
    let report = cluster.run(&mut LocalityAffinity::new(), &reqs);

    assert!(report.completions.iter().all(|c| c.result.is_ok()));
    assert!(report.stats.resurrections >= 1, "{:?}", report.stats);
    let obs = cluster.obs().clone();
    obs.recorder().finish();
    assert_trace_complete(&obs, cluster.clock().now(), &report.completions);

    // The comeback request's root is tagged with the resurrection.
    let events = obs.recorder().events();
    let resurrected = events.iter().any(|e| match e {
        Event::Span(s) => s.parent.is_none() && s.attrs.iter().any(|(k, _)| *k == "resurrected"),
        Event::Instant(_) => false,
    });
    assert!(
        resurrected,
        "the resurrecting request's root must carry the marker"
    );
}

/// Byte-determinism of the whole trace plane: same seed, same schedule,
/// byte-identical JSONL export.
#[test]
fn same_seed_cluster_traces_export_identically() {
    let run = |seed: u64| -> String {
        let mut config = ClusterConfig::new(4, 2);
        config.env = EnvConfig {
            fault_plan: FaultPlan::new(seed).nth(FaultSite::HostCrash, 4),
            ..EnvConfig::default()
        };
        let mut cluster = Cluster::new(config, |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        cluster.install(&spec("f")).expect("installs");
        let start = cluster.clock().now();
        let reqs: Vec<EngineRequest> = (0..24)
            .map(|i| req_at(start + Nanos::from_millis(25) * i, "f"))
            .collect();
        cluster.run(&mut LocalityAffinity::new(), &reqs);
        cluster.obs().recorder().finish();
        fireworks::obs::export::jsonl(cluster.obs().recorder())
    };
    assert_eq!(run(7), run(7), "same-seed exports must be byte-identical");
    fireworks::obs::export::schema::check_jsonl(&run(7)).expect("export passes the schema check");
}
