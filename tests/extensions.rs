//! Shape assertions for the beyond-the-paper experiments (motivation
//! trace, load sweep), so the bench binaries cannot silently rot.

use fireworks::prelude::*;
use fireworks::sim::queueing::{simulate, Arrival};
use fireworks::workloads::faasdom::Bench;
use fireworks::workloads::trace::{generate, unpopular_fraction, TraceConfig};

/// §2.2 motivation in miniature: on a Zipf trace with a keep-alive pool,
/// tail functions see far worse average start-up on OpenWhisk than head
/// functions, while Fireworks is flat.
#[test]
fn warm_pools_fail_the_unpopular_tail() {
    let cfg = TraceConfig {
        functions: 8,
        horizon: Nanos::from_secs(15 * 60),
        total_events: 120,
        alpha: 1.2,
        seed: 3,
    };
    let trace = generate(&cfg);
    let bench = Bench::NetLatency;

    let env = PlatformEnv::default_env();
    let mut ow = OpenWhiskPlatform::with_config(
        env.clone(),
        PlatformConfig::builder()
            .keep_alive(Some(Nanos::from_secs(60)))
            .build(),
    );
    let mut specs = Vec::new();
    for i in 0..cfg.functions {
        let mut spec = bench.spec(RuntimeKind::NodeLike);
        spec.name = format!("fn-{i}");
        ow.install(&spec).expect("install");
        specs.push(spec);
    }
    let mut startup = vec![Nanos::ZERO; cfg.functions];
    let mut count = vec![0u64; cfg.functions];
    for e in &trace {
        if env.clock.now() < e.at {
            env.clock.advance(e.at - env.clock.now());
        }
        let inv = ow
            .invoke(&InvokeRequest::new(
                fid(&specs[e.function].name),
                Value::map([]),
            ))
            .expect("invoke");
        startup[e.function] += inv.breakdown.startup;
        count[e.function] += 1;
    }
    let head_avg = startup[0] / count[0].max(1);
    let tail_idx = (0..cfg.functions)
        .rev()
        .find(|i| count[*i] > 0)
        .expect("some tail function was invoked");
    let tail_avg = startup[tail_idx] / count[tail_idx];
    assert!(
        tail_avg.as_nanos() > 3 * head_avg.as_nanos(),
        "tail avg {tail_avg} should dwarf head avg {head_avg}"
    );
    let (cold, warm) = ow.start_counts();
    assert!(cold > 0 && warm > 0, "mix of cold and warm starts");
}

/// The Shahrad-style skew: most functions fall below once-a-minute.
#[test]
fn zipf_traces_have_an_unpopular_majority() {
    let cfg = TraceConfig {
        functions: 100,
        total_events: 1_500,
        ..TraceConfig::default()
    };
    assert!(unpopular_fraction(&cfg) > 0.5);
}

/// Load sweep in miniature: with identical arrivals, a service time that
/// mixes cold starts has a far worse p99 than uniform snapshot starts.
#[test]
fn cold_starts_poison_the_tail_under_load() {
    let ms = Nanos::from_millis;
    let cold = ms(1_800);
    let warm = ms(50);
    let snapshot = ms(18);
    let mut seen = std::collections::HashSet::new();
    let arrivals_ow: Vec<Arrival> = (0..400)
        .map(|i| Arrival {
            at: ms(20 * i),
            service: if seen.insert(i % 30) { cold } else { warm },
        })
        .collect();
    let arrivals_fw: Vec<Arrival> = arrivals_ow
        .iter()
        .map(|a| Arrival {
            at: a.at,
            service: snapshot,
        })
        .collect();
    let p99 = |done: &[fireworks::sim::queueing::Completion]| {
        let mut s: Vec<Nanos> = done.iter().map(|c| c.sojourn()).collect();
        s.sort_unstable();
        s[s.len() * 99 / 100]
    };
    let ow = simulate(4, &arrivals_ow);
    let fw = simulate(4, &arrivals_fw);
    assert!(
        p99(&ow).as_nanos() > 20 * p99(&fw).as_nanos(),
        "ow p99 {} vs fw p99 {}",
        p99(&ow),
        p99(&fw)
    );
}

/// The REAP paging ablation shape: cold storage hurts every invocation;
/// REAP recovers from the second one on.
#[test]
fn reap_prefetch_shape_holds() {
    let spec = Bench::NetLatency.spec(RuntimeKind::NodeLike);
    let mut totals = Vec::new();
    for policy in [
        PagingPolicy::WarmPageCache,
        PagingPolicy::ColdStorage { reap: false },
        PagingPolicy::ColdStorage { reap: true },
    ] {
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder().paging(policy).build(),
        );
        p.install(&spec).expect("install");
        let first = p
            .invoke(&InvokeRequest::new(fid(&spec.name), Value::map([])))
            .expect("1st");
        let second = p
            .invoke(&InvokeRequest::new(fid(&spec.name), Value::map([])))
            .expect("2nd");
        totals.push((first.total(), second.total()));
    }
    let (warm1, warm2) = totals[0];
    let (cold1, cold2) = totals[1];
    let (reap1, reap2) = totals[2];
    assert_eq!(warm1, warm2);
    assert_eq!(cold1, cold2, "no learning without REAP");
    assert_eq!(reap1, cold1, "recording pass pays full faults");
    assert!(reap2 < cold2 / 2, "prefetch recovers: {reap2} vs {cold2}");
    assert!(warm2 < reap2, "page cache still beats prefetch");
}
