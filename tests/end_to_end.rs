//! Cross-crate integration tests: the full install → snapshot → restore →
//! invoke pipeline with all substrates wired together.

use fireworks::prelude::*;
use fireworks::workloads::faasdom::Bench;
use fireworks::workloads::generators::WageRecordGen;
use fireworks::workloads::serverlessbench::{AlexaApp, DataAnalysisApp};

fn fact_args(n: i64) -> Value {
    Value::map([
        ("n".to_string(), Value::Int(n)),
        ("reps".to_string(), Value::Int(1)),
    ])
}

#[test]
fn fireworks_pipeline_runs_all_faasdom_benchmarks_in_both_runtimes() {
    for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
        let mut platform = FireworksPlatform::new(PlatformEnv::default_env());
        for bench in Bench::ALL {
            let spec = bench.spec(runtime);
            platform.install(&spec).expect("install");
            let inv = platform
                .invoke(&InvokeRequest::new(fid(&spec.name), bench.request_params()))
                .expect("invoke");
            assert_eq!(inv.start, StartKind::SnapshotRestore, "{}", spec.name);
            assert!(inv.total() > Nanos::ZERO);
            // Every FaaSdom function responds over HTTP.
            assert!(inv.response.is_some(), "{} responded", spec.name);
        }
    }
}

#[test]
fn snapshot_clones_are_isolated_but_share_the_snapshot() {
    let mut platform = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    platform.install(&spec).expect("install");

    // Distinct arguments produce distinct results even though all clones
    // resume from byte-identical memory.
    let r8 = platform
        .invoke(&InvokeRequest::new(fid(&spec.name), fact_args(8)))
        .expect("invoke");
    let r97 = platform
        .invoke(&InvokeRequest::new(fid(&spec.name), fact_args(97)))
        .expect("invoke");
    assert_eq!(r8.value, Value::Int(3));
    assert_eq!(r97.value, Value::Int(1));

    // Resident clones share guest frames.
    let (_, a) = platform
        .invoke_resident(fid(&spec.name), &fact_args(50))
        .expect("clone a");
    let (_, b) = platform
        .invoke_resident(fid(&spec.name), &fact_args(60))
        .expect("clone b");
    let shared_fraction = a.pss_bytes() as f64 / a.rss_bytes() as f64;
    assert!(
        shared_fraction < 0.7,
        "clone PSS should be well below RSS, got {shared_fraction:.2}"
    );
    platform.release_clone(a);
    platform.release_clone(b);
}

#[test]
fn install_once_invoke_many_start_latency_is_stable() {
    let mut platform = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = Bench::NetLatency.spec(RuntimeKind::NodeLike);
    platform.install(&spec).expect("install");
    let mut startups = Vec::new();
    for _ in 0..5 {
        let inv = platform
            .invoke(&InvokeRequest::new(fid(&spec.name), Value::map([])))
            .expect("invoke");
        startups.push(inv.breakdown.startup);
    }
    // Deterministic simulation: every restore costs the same.
    assert!(startups.windows(2).all(|w| w[0] == w[1]), "{startups:?}");
}

#[test]
fn all_four_platforms_agree_on_results() {
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = fact_args(360);
    let expected = Value::Int(6);

    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    fw.install(&spec).expect("install");
    assert_eq!(
        fw.invoke(&InvokeRequest::new(fid(&spec.name), args.deep_clone()))
            .expect("fw")
            .value,
        expected
    );

    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    ow.install(&spec).expect("install");
    assert_eq!(
        ow.invoke(
            &InvokeRequest::new(fid(&spec.name), args.deep_clone()).with_mode(StartMode::Cold)
        )
        .expect("ow")
        .value,
        expected
    );

    let mut gv = GvisorPlatform::new(PlatformEnv::default_env());
    gv.install(&spec).expect("install");
    assert_eq!(
        gv.invoke(
            &InvokeRequest::new(fid(&spec.name), args.deep_clone()).with_mode(StartMode::Cold)
        )
        .expect("gv")
        .value,
        expected
    );

    let mut fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    assert_eq!(
        fc.invoke(
            &InvokeRequest::new(fid(&spec.name), args.deep_clone()).with_mode(StartMode::Cold)
        )
        .expect("fc")
        .value,
        expected
    );
}

#[test]
fn alexa_chain_runs_on_both_chain_capable_platforms() {
    let utterances = [
        "alexa tell me a fact",
        "alexa remind me to move car garage",
        "alexa flip the tv",
    ];

    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    AlexaApp::install(&mut fw).expect("install fw");
    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    AlexaApp::install(&mut ow).expect("install ow");

    for utterance in utterances {
        let fw_stages = AlexaApp::run(&mut fw, utterance, StartMode::Auto).expect("fw");
        let ow_stages = AlexaApp::run(&mut ow, utterance, StartMode::Auto).expect("ow");
        assert_eq!(fw_stages[1].stage, ow_stages[1].stage, "same routing");
    }
}

#[test]
fn data_analysis_trigger_chain_accumulates_statistics() {
    let env = PlatformEnv::default_env();
    let mut platform = FireworksPlatform::new(env.clone());
    let mut app = DataAnalysisApp::install(&mut platform, env.clone()).expect("install");
    let mut gen = WageRecordGen::new(11);

    for i in 1..=4u64 {
        let record = gen.next_record();
        app.insert(&mut platform, &record, StartMode::Auto)
            .expect("insert");
        let analysis = app
            .poll_trigger(&mut platform, StartMode::Auto)
            .expect("poll")
            .expect("db update fires the chain");
        let Value::Map(stats) = &analysis[0].invocation.value else {
            panic!("stats map");
        };
        assert_eq!(stats.borrow()["employees"], Value::Int(i as i64));
    }
    assert_eq!(env.store.borrow().count("wages"), 4);
    // The stats document is continuously updated (rev grows).
    let stats = env
        .store
        .borrow()
        .get("stats", "latest")
        .expect("stats doc");
    assert_eq!(stats.rev, 4);
}

#[test]
fn shared_host_runs_multiple_platforms_on_one_timeline() {
    // Fireworks and OpenWhisk on the *same* host share the clock, memory,
    // bus, and store.
    let env = PlatformEnv::default_env();
    let mut fw = FireworksPlatform::new(env.clone());
    let mut ow = OpenWhiskPlatform::new(env.clone());

    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    fw.install(&spec).expect("install fw");
    let mut spec_ow = spec.clone();
    spec_ow.name = "fact-ow".to_string();
    ow.install(&spec_ow).expect("install ow");

    let t0 = env.clock.now();
    fw.invoke(&InvokeRequest::new(fid(&spec.name), fact_args(100)))
        .expect("fw");
    let t1 = env.clock.now();
    ow.invoke(&InvokeRequest::new(fid("fact-ow"), fact_args(100)).with_mode(StartMode::Cold))
        .expect("ow");
    let t2 = env.clock.now();
    assert!(t1 > t0 && t2 > t1, "one shared monotone timeline");
}

#[test]
fn determinism_same_seed_same_virtual_latency() {
    let run = || {
        let mut platform = FireworksPlatform::new(PlatformEnv::default_env());
        let spec = Bench::MatrixMult.spec(RuntimeKind::PythonLike);
        platform.install(&spec).expect("install");
        let inv = platform
            .invoke(&InvokeRequest::new(
                fid(&spec.name),
                Bench::MatrixMult.request_params(),
            ))
            .expect("invoke");
        (inv.total(), inv.value.clone(), inv.stats)
    };
    let (t1, v1, s1) = run();
    let (t2, v2, s2) = run();
    assert_eq!(t1, t2, "bit-identical virtual latency");
    assert_eq!(v1, v2);
    assert_eq!(s1, s2);
}
