//! Failure injection: runaway functions, guest crashes, hostile inputs,
//! and resource pressure must be contained by the platform — errors are
//! reported, state stays consistent, and subsequent invocations work.

use fireworks::prelude::*;
use fireworks::workloads::faasdom::Bench;

fn install<P: Platform>(p: &mut P, name: &str, src: &str) {
    p.install(&FunctionSpec::new(
        name,
        src,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(5))]),
    ))
    .expect("install");
}

#[test]
fn runaway_function_is_killed_by_timeout() {
    const SPIN: &str = "fn main(params) { let i = 0; while (true) { i = i + 1; } return i; }";
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = FunctionSpec::new(
        "spin",
        SPIN,
        RuntimeKind::NodeLike,
        // Warm-up must terminate: give install a generous default but a
        // tight invocation timeout. The warm-up loop is bounded by the
        // installer's fuel-less run... so use a function that only spins
        // on a flag in params.
        Value::map([("spin".to_string(), Value::Bool(false))]),
    );
    // A function that loops forever only when asked to.
    let spec = FunctionSpec {
        source: "fn main(params) {
            let i = 0;
            while (params[\"spin\"]) { i = i + 1; }
            return i;
        }"
        .to_string(),
        ..spec
    }
    .with_timeout(Nanos::from_millis(50));
    p.install(&spec).expect("install");

    // Benign input completes.
    let ok = p
        .invoke(
            "spin",
            &Value::map([("spin".to_string(), Value::Bool(false))]),
            StartMode::Auto,
        )
        .expect("completes");
    assert_eq!(ok.value, Value::Int(0));

    // Hostile input spins forever — the timeout kills it.
    let err = p.invoke(
        "spin",
        &Value::map([("spin".to_string(), Value::Bool(true))]),
        StartMode::Auto,
    );
    match err {
        Err(PlatformError::Timeout { function, ops }) => {
            assert_eq!(function, "spin");
            assert!(ops > 0);
        }
        other => panic!("expected timeout, got {other:?}"),
    }

    // The platform still serves requests afterwards.
    let again = p
        .invoke(
            "spin",
            &Value::map([("spin".to_string(), Value::Bool(false))]),
            StartMode::Auto,
        )
        .expect("recovers");
    assert_eq!(again.value, Value::Int(0));
}

#[test]
fn timeout_applies_on_baselines_too() {
    let spec = FunctionSpec::new(
        "spin",
        "fn main(params) { let i = 0; while (params[\"spin\"]) { i = i + 1; } return i; }",
        RuntimeKind::NodeLike,
        Value::map([("spin".to_string(), Value::Bool(false))]),
    )
    .with_timeout(Nanos::from_millis(20));
    let hostile = Value::map([("spin".to_string(), Value::Bool(true))]);

    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    ow.install(&spec).expect("install");
    assert!(matches!(
        ow.invoke("spin", &hostile, StartMode::Cold),
        Err(PlatformError::Timeout { .. })
    ));

    let mut fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    assert!(matches!(
        fc.invoke("spin", &hostile, StartMode::Cold),
        Err(PlatformError::Timeout { .. })
    ));

    let mut gv = GvisorPlatform::new(PlatformEnv::default_env());
    gv.install(&spec).expect("install");
    assert!(matches!(
        gv.invoke("spin", &hostile, StartMode::Cold),
        Err(PlatformError::Timeout { .. })
    ));
}

#[test]
fn guest_runtime_error_is_contained() {
    const CRASH: &str = "fn main(params) {
        if (params[\"boom\"]) { return 1 / 0; }
        return 42;
    }";
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    install(&mut p, "crashy", CRASH);
    // Install's warm-up uses default params (no boom) and succeeds; a
    // hostile request divides by zero.
    let err = p.invoke(
        "crashy",
        &Value::map([("boom".to_string(), Value::Bool(true))]),
        StartMode::Auto,
    );
    assert!(matches!(err, Err(PlatformError::Lang(_))), "{err:?}");
    // Next invocation gets a fresh clone and works.
    let ok = p
        .invoke(
            "crashy",
            &Value::map([("boom".to_string(), Value::Bool(false))]),
            StartMode::Auto,
        )
        .expect("fresh clone works");
    assert_eq!(ok.value, Value::Int(42));
}

#[test]
fn install_fails_cleanly_on_bad_source() {
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let bad = FunctionSpec::new(
        "broken",
        "fn main(params { syntax error",
        RuntimeKind::NodeLike,
        Value::Null,
    );
    assert!(p.install(&bad).is_err());
    // Nothing half-registered.
    assert!(matches!(
        p.invoke("broken", &Value::Null, StartMode::Auto),
        Err(PlatformError::UnknownFunction(_))
    ));
}

#[test]
fn install_fails_cleanly_when_warmup_crashes() {
    // The warm-up itself divides by zero (default params trigger it), so
    // the snapshot can never be built.
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let bad = FunctionSpec::new(
        "warmup-crash",
        "fn main(params) { return 1 / params[\"zero\"]; }",
        RuntimeKind::NodeLike,
        Value::map([("zero".to_string(), Value::Int(0))]),
    );
    assert!(p.install(&bad).is_err());
}

#[test]
fn memory_pressure_reports_swapping_not_a_crash() {
    // A tiny host: a handful of resident clones pushes it past the swap
    // threshold; the simulation keeps working and reports the state.
    let env = PlatformEnv::new(EnvConfig {
        ram_bytes: 512 << 20,
        swappiness: 60,
        costs: CostModel::default(),
    });
    let mut p = FireworksPlatform::new(env.clone());
    let spec = Bench::NetLatency.spec(RuntimeKind::NodeLike);
    p.install(&spec).expect("install");
    let mut clones = Vec::new();
    for _ in 0..64 {
        let (_, c) = p
            .invoke_resident(&spec.name, &Value::map([]))
            .expect("clone");
        clones.push(c);
        if env.host_mem.is_swapping() {
            break;
        }
    }
    assert!(
        env.host_mem.is_swapping(),
        "tiny host must hit the threshold"
    );
    // Releasing clones brings the host back under the threshold.
    for c in clones {
        p.release_clone(c);
    }
    assert!(!env.host_mem.is_swapping());
}

#[test]
fn timed_out_invocation_still_charges_its_execution() {
    let spec = FunctionSpec::new(
        "spin",
        "fn main(params) { let i = 0; while (params[\"spin\"]) { i = i + 1; } return i; }",
        RuntimeKind::NodeLike,
        Value::map([("spin".to_string(), Value::Bool(false))]),
    )
    .with_timeout(Nanos::from_millis(25));
    let env = PlatformEnv::default_env();
    let mut p = FireworksPlatform::new(env.clone());
    p.install(&spec).expect("install");
    let before = env.clock.now();
    let _ = p.invoke(
        "spin",
        &Value::map([("spin".to_string(), Value::Bool(true))]),
        StartMode::Auto,
    );
    let elapsed = env.clock.now() - before;
    // The runaway execution burned (roughly) its budget of virtual time
    // before being killed.
    assert!(
        elapsed >= Nanos::from_millis(20),
        "killed run must charge time, got {elapsed}"
    );
}
