//! Failure injection: runaway functions, guest crashes, hostile inputs,
//! and resource pressure must be contained by the platform — errors are
//! reported, state stays consistent, and subsequent invocations work.

use fireworks::prelude::*;
use fireworks::workloads::faasdom::Bench;

fn install<P: Platform>(p: &mut P, name: &str, src: &str) {
    p.install(&FunctionSpec::new(
        name,
        src,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(5))]),
    ))
    .expect("install");
}

#[test]
fn runaway_function_is_killed_by_timeout() {
    const SPIN: &str = "fn main(params) { let i = 0; while (true) { i = i + 1; } return i; }";
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = FunctionSpec::new(
        "spin",
        SPIN,
        RuntimeKind::NodeLike,
        // Warm-up must terminate: give install a generous default but a
        // tight invocation timeout. The warm-up loop is bounded by the
        // installer's fuel-less run... so use a function that only spins
        // on a flag in params.
        Value::map([("spin".to_string(), Value::Bool(false))]),
    );
    // A function that loops forever only when asked to.
    let spec = FunctionSpec {
        source: "fn main(params) {
            let i = 0;
            while (params[\"spin\"]) { i = i + 1; }
            return i;
        }"
        .to_string(),
        ..spec
    }
    .with_timeout(Nanos::from_millis(50));
    p.install(&spec).expect("install");

    // Benign input completes.
    let ok = p
        .invoke(&InvokeRequest::new(
            fid("spin"),
            Value::map([("spin".to_string(), Value::Bool(false))]),
        ))
        .expect("completes");
    assert_eq!(ok.value, Value::Int(0));

    // Hostile input spins forever — the timeout kills it.
    let err = p.invoke(&InvokeRequest::new(
        fid("spin"),
        Value::map([("spin".to_string(), Value::Bool(true))]),
    ));
    match err {
        Err(PlatformError::Timeout { function, ops }) => {
            assert_eq!(function, "spin");
            assert!(ops > 0);
        }
        other => panic!("expected timeout, got {other:?}"),
    }

    // The platform still serves requests afterwards.
    let again = p
        .invoke(&InvokeRequest::new(
            fid("spin"),
            Value::map([("spin".to_string(), Value::Bool(false))]),
        ))
        .expect("recovers");
    assert_eq!(again.value, Value::Int(0));
}

#[test]
fn timeout_applies_on_baselines_too() {
    let spec = FunctionSpec::new(
        "spin",
        "fn main(params) { let i = 0; while (params[\"spin\"]) { i = i + 1; } return i; }",
        RuntimeKind::NodeLike,
        Value::map([("spin".to_string(), Value::Bool(false))]),
    )
    .with_timeout(Nanos::from_millis(20));
    let hostile = Value::map([("spin".to_string(), Value::Bool(true))]);

    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    ow.install(&spec).expect("install");
    assert!(matches!(
        ow.invoke(
            &InvokeRequest::new(fid("spin"), hostile.deep_clone()).with_mode(StartMode::Cold)
        ),
        Err(PlatformError::Timeout { .. })
    ));

    let mut fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    assert!(matches!(
        fc.invoke(
            &InvokeRequest::new(fid("spin"), hostile.deep_clone()).with_mode(StartMode::Cold)
        ),
        Err(PlatformError::Timeout { .. })
    ));

    let mut gv = GvisorPlatform::new(PlatformEnv::default_env());
    gv.install(&spec).expect("install");
    assert!(matches!(
        gv.invoke(
            &InvokeRequest::new(fid("spin"), hostile.deep_clone()).with_mode(StartMode::Cold)
        ),
        Err(PlatformError::Timeout { .. })
    ));
}

#[test]
fn guest_runtime_error_is_contained() {
    const CRASH: &str = "fn main(params) {
        if (params[\"boom\"]) { return 1 / 0; }
        return 42;
    }";
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    install(&mut p, "crashy", CRASH);
    // Install's warm-up uses default params (no boom) and succeeds; a
    // hostile request divides by zero.
    let err = p.invoke(&InvokeRequest::new(
        fid("crashy"),
        Value::map([("boom".to_string(), Value::Bool(true))]),
    ));
    assert!(matches!(err, Err(PlatformError::Lang(_))), "{err:?}");
    // Next invocation gets a fresh clone and works.
    let ok = p
        .invoke(&InvokeRequest::new(
            fid("crashy"),
            Value::map([("boom".to_string(), Value::Bool(false))]),
        ))
        .expect("fresh clone works");
    assert_eq!(ok.value, Value::Int(42));
}

#[test]
fn install_fails_cleanly_on_bad_source() {
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let bad = FunctionSpec::new(
        "broken",
        "fn main(params { syntax error",
        RuntimeKind::NodeLike,
        Value::Null,
    );
    assert!(p.install(&bad).is_err());
    // Nothing half-registered.
    assert!(matches!(
        p.invoke(&InvokeRequest::new(fid("broken"), Value::Null)),
        Err(PlatformError::UnknownFunction(_))
    ));
}

#[test]
fn install_fails_cleanly_when_warmup_crashes() {
    // The warm-up itself divides by zero (default params trigger it), so
    // the snapshot can never be built.
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let bad = FunctionSpec::new(
        "warmup-crash",
        "fn main(params) { return 1 / params[\"zero\"]; }",
        RuntimeKind::NodeLike,
        Value::map([("zero".to_string(), Value::Int(0))]),
    );
    assert!(p.install(&bad).is_err());
}

#[test]
fn memory_pressure_reports_swapping_not_a_crash() {
    // A tiny host: a handful of resident clones pushes it past the swap
    // threshold; the simulation keeps working and reports the state.
    let env = PlatformEnv::new(EnvConfig {
        ram_bytes: 512 << 20,
        swappiness: 60,
        costs: CostModel::default(),
        ..EnvConfig::default()
    });
    let mut p = FireworksPlatform::new(env.clone());
    let spec = Bench::NetLatency.spec(RuntimeKind::NodeLike);
    p.install(&spec).expect("install");
    let mut clones = Vec::new();
    for _ in 0..64 {
        let (_, c) = p
            .invoke_resident(fid(&spec.name), &Value::map([]))
            .expect("clone");
        clones.push(c);
        if env.host_mem.is_swapping() {
            break;
        }
    }
    assert!(
        env.host_mem.is_swapping(),
        "tiny host must hit the threshold"
    );
    // Releasing clones brings the host back under the threshold.
    for c in clones {
        p.release_clone(c);
    }
    assert!(!env.host_mem.is_swapping());
}

#[test]
fn injector_at_rate_zero_changes_nothing() {
    // An armed injector whose every probability is 0 must be a perfect
    // no-op: same results, same virtual-time costs as no injector at all.
    let run = |env: PlatformEnv| {
        let mut p = FireworksPlatform::new(env.clone());
        let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
        p.install(&spec).expect("install");
        let inv = p
            .invoke(&InvokeRequest::new(
                fid(&spec.name),
                Bench::Fact.request_params(),
            ))
            .expect("invoke");
        (inv.value.deep_clone(), inv.total(), env.clock.now())
    };
    let plain = run(PlatformEnv::default_env());
    let armed = run(PlatformEnv::with_fault_plan(FaultPlan::uniform(42, 0.0)));
    assert_eq!(plain, armed);
}

#[test]
fn same_fault_seed_gives_identical_schedule_and_recovery_trace() {
    // Determinism: two fresh runs under the same fault plan must inject
    // the same faults at the same virtual times and recover identically.
    let run = || {
        let plan = FaultPlan::uniform(1234, 0.03);
        let env = PlatformEnv::with_fault_plan(plan);
        let mut p = FireworksPlatform::new(env.clone());
        let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
        p.install(&spec).expect("install");
        let mut outcomes = Vec::new();
        let mut spans = Vec::new();
        for _ in 0..25 {
            match p.invoke(&InvokeRequest::new(
                fid(&spec.name),
                Bench::Fact.request_params(),
            )) {
                Ok(inv) => {
                    outcomes.push(format!("ok:{}", inv.value));
                    for s in inv.trace.spans() {
                        if s.label.starts_with("fault:")
                            || s.label == "recovery_backoff"
                            || s.label == "snapshot_rebuild"
                        {
                            spans.push(format!("{}@{}+{}", s.label, s.start, s.duration()));
                        }
                    }
                }
                Err(e) => outcomes.push(format!("err:{e}")),
            }
        }
        let fingerprint = env.injector.borrow().schedule_fingerprint();
        let checks = env.injector.borrow().checks();
        (outcomes, spans, fingerprint, checks, env.clock.now())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "fault schedule and recovery must be deterministic");
    assert!(a.2 != 0, "the run must actually have injected faults");
}

#[test]
fn corrupted_snapshot_self_heals_end_to_end() {
    // Damage a cached snapshot page from outside (no injector): the next
    // invocation must detect the bad checksum, rebuild from source, and
    // still return the correct result; the one after restores cleanly
    // from the rebuilt snapshot.
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    p.install(&spec).expect("install");
    let clean = p
        .invoke(&InvokeRequest::new(
            fid(&spec.name),
            Bench::Fact.request_params(),
        ))
        .expect("baseline");

    p.cached_snapshot(fid(&spec.name))
        .expect("cached")
        .mem()
        .corrupt_page(4321);

    let healed = p
        .invoke(&InvokeRequest::new(
            fid(&spec.name),
            Bench::Fact.request_params(),
        ))
        .expect("self-heals");
    assert_eq!(healed.value, clean.value, "healed run returns the answer");
    assert_eq!(healed.start, StartKind::SnapshotRestore);
    assert!(
        healed.trace.total_for("snapshot_rebuild") > Nanos::ZERO,
        "the rebuild must be visible in the trace"
    );
    let health = p.health(fid(&spec.name)).expect("installed");
    assert_eq!(health.quarantines, 1);

    let after = p
        .invoke(&InvokeRequest::new(
            fid(&spec.name),
            Bench::Fact.request_params(),
        ))
        .expect("restores from rebuilt snapshot");
    assert_eq!(after.start, StartKind::SnapshotRestore);
    assert_eq!(after.value, clean.value);
    assert_eq!(
        after.trace.total_for("snapshot_rebuild"),
        Nanos::ZERO,
        "no further rebuilds once healed"
    );
}

#[test]
fn timed_out_invocation_still_charges_its_execution() {
    let spec = FunctionSpec::new(
        "spin",
        "fn main(params) { let i = 0; while (params[\"spin\"]) { i = i + 1; } return i; }",
        RuntimeKind::NodeLike,
        Value::map([("spin".to_string(), Value::Bool(false))]),
    )
    .with_timeout(Nanos::from_millis(25));
    let env = PlatformEnv::default_env();
    let mut p = FireworksPlatform::new(env.clone());
    p.install(&spec).expect("install");
    let before = env.clock.now();
    let _ = p.invoke(&InvokeRequest::new(
        fid("spin"),
        Value::map([("spin".to_string(), Value::Bool(true))]),
    ));
    let elapsed = env.clock.now() - before;
    // The runaway execution burned (roughly) its budget of virtual time
    // before being killed.
    assert!(
        elapsed >= Nanos::from_millis(20),
        "killed run must charge time, got {elapsed}"
    );
}
