//! Elastic control plane: crash-reroute conservation on the fixed
//! cluster, graceful drain with live snapshot hand-off, deadline-forced
//! hard removal, scale-to-zero resurrection, chaos over the
//! control-plane fault sites, and byte-determinism.

use fireworks::core::elastic::{ElasticCluster, ElasticConfig, ElasticPolicy};
use fireworks::core::engine::EngineRequest;
use fireworks::core::{ConcurrentPlatform, HostView, Route, SnapshotStorePolicy};
use fireworks::prelude::*;

const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn spec(name: &str) -> FunctionSpec {
    FunctionSpec::new(
        name,
        SRC,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(500))]),
    )
}

fn req_at(at: Nanos, name: &str) -> EngineRequest {
    EngineRequest::at(
        at,
        InvokeRequest::new(fid(name), Value::map([("n".to_string(), Value::Int(500))])),
    )
}

fn dedup_elastic(policy: ElasticPolicy, plan: FaultPlan) -> ElasticCluster<FireworksPlatform> {
    let mut config = ElasticConfig::new(1);
    config.platform = PlatformConfig::builder()
        .snapshot_store(SnapshotStorePolicy::dedup())
        .build();
    config.env.fault_plan = plan;
    config.policy = policy;
    ElasticCluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    })
}

/// Regression for the fixed cluster's conservation guarantee: a host
/// that crashes with a deep admission queue must leave no request
/// behind — everything it held reaches a terminal outcome elsewhere
/// (or fails with `HostUnavailable` once nothing can serve).
#[test]
fn crashed_host_queue_is_conserved() {
    // Every host's injector crashes it at its 2nd service start, so a
    // 6-deep burst over 2 one-slot hosts kills the whole fleet with
    // queued work stranded on both.
    let mut config = ClusterConfig::new(2, 1);
    config.env = EnvConfig {
        fault_plan: FaultPlan::new(42).nth(FaultSite::HostCrash, 2),
        ..EnvConfig::default()
    };
    let mut cluster = Cluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    cluster.install(&spec("f")).expect("installs");
    let at = cluster.clock().now();
    let burst: Vec<EngineRequest> = (0..6).map(|_| req_at(at, "f")).collect();
    let report = cluster.run(&mut LeastLoaded::new(), &burst);

    // Conservation: all six requests are accounted for, none lost.
    assert_eq!(report.completions.len(), 6);
    let ok = report
        .completions
        .iter()
        .filter(|c| c.result.is_ok())
        .count();
    assert_eq!(ok, 2, "one service start per host before its crash");
    for c in &report.completions {
        if let Err(e) = &c.result {
            assert!(
                matches!(e, PlatformError::HostUnavailable { .. }),
                "stranded requests fail terminally, got {e:?}"
            );
        }
    }
    assert_eq!(
        report.failed_hosts,
        vec![HostId::from_index(0), HostId::from_index(1)]
    );
    assert!(
        report.crash_reroutes > 0,
        "the dead hosts' queues were displaced and rerouted"
    );
    let snap = cluster.obs().metrics().snapshot();
    assert_eq!(
        snap.counter("cluster.crash_reroutes", &[]),
        report.crash_reroutes
    );
}

#[test]
fn burst_scales_up_and_every_request_is_served() {
    let policy = ElasticPolicy {
        min_hosts: 1,
        max_hosts: 4,
        scale_up_queue: 1,
        control_interval: Nanos::from_millis(10),
        boot_delay: Nanos::from_millis(20),
        ..ElasticPolicy::default()
    };
    let mut cluster = dedup_elastic(policy, FaultPlan::new(1));
    cluster.install(&spec("f")).expect("installs");
    let reqs: Vec<EngineRequest> = (0..24)
        .map(|i| req_at(Nanos::from_millis(2) * i, "f"))
        .collect();
    let report = cluster.run(&mut LocalityAffinity::new(), &reqs);
    assert!(report.completions.iter().all(|c| c.result.is_ok()));
    assert!(report.stats.scale_ups > 0, "{:?}", report.stats);
    assert!(report.peak_hosts > 1);
    assert!(
        report.audit_violations.is_empty(),
        "{:?}",
        report.audit_violations
    );
}

/// Pins `f` to the lowest-id active host and `g` to the highest-id
/// active host, deferring when the pinned host is full — the crafted
/// topology that makes host 0 the sole holder of `f` while host 1
/// stays busy with `g`.
struct SplitByFunction;

impl Router for SplitByFunction {
    fn name(&self) -> &'static str {
        "split_by_function"
    }
    fn route(&mut self, req: &InvokeRequest, hosts: &[HostView]) -> Route {
        // Strict pinning: if the pinned host is full, wait — never
        // spill onto the other host (that would hand it the snapshot
        // organically and defeat the sole-holder setup).
        let healthy = hosts.iter().filter(|v| v.healthy);
        let pick = if req.function == fid("g") {
            healthy.max_by_key(|v| v.id)
        } else {
            healthy.min_by_key(|v| v.id)
        };
        match pick {
            Some(v) if v.has_capacity() => Route::Host(v.id),
            _ => Route::Defer,
        }
    }
}

/// The crafted sole-holder workload: a burst of `f` overloads host 0
/// into a scale-up, then a long `g` stream keeps host 1 busy while
/// host 0 goes idle and drains.
fn sole_holder_schedule() -> Vec<EngineRequest> {
    let mut reqs: Vec<EngineRequest> = (0..6)
        .map(|i| req_at(Nanos::from_millis(1) * i, "f"))
        .collect();
    let g_start = Nanos::from_millis(60);
    for i in 0..30u64 {
        reqs.push(req_at(g_start + Nanos::from_millis(20) * i, "g"));
    }
    reqs.push(req_at(Nanos::from_millis(1_200), "f"));
    reqs
}

fn sole_holder_policy() -> ElasticPolicy {
    ElasticPolicy {
        min_hosts: 1,
        max_hosts: 2,
        // High enough that only the opening f burst (5 queued behind a
        // one-slot host) triggers growth — the steady g stream never
        // re-triggers it, so the fleet settles instead of churning.
        scale_up_queue: 3,
        scale_down_idle_ticks: 2,
        control_interval: Nanos::from_millis(20),
        boot_delay: Nanos::from_millis(20),
        drain_deadline: Nanos::from_secs(5),
        ..ElasticPolicy::default()
    }
}

#[test]
fn graceful_drain_migrates_sole_snapshot_to_survivor() {
    let mut cluster = dedup_elastic(sole_holder_policy(), FaultPlan::new(3));
    cluster.install(&spec("f")).expect("installs");
    cluster.install(&spec("g")).expect("installs");
    let reqs = sole_holder_schedule();
    let report = cluster.run(&mut SplitByFunction, &reqs);

    assert!(report.completions.iter().all(|c| c.result.is_ok()));
    assert!(report.stats.scale_ups >= 1, "{:?}", report.stats);
    assert!(
        report.stats.graceful_drains >= 1,
        "host 0 must drain gracefully: {:?}",
        report.stats
    );
    assert!(
        report.stats.migrations >= 1,
        "the drain must hand f to the survivor: {:?}",
        report.stats
    );
    assert!(
        report.audit_violations.is_empty(),
        "{:?}",
        report.audit_violations
    );

    // The surviving host ends fully resident for f — the hand-off
    // moved real chunks — and the post-drain f request was served
    // warm, nowhere near the ~470 ms a rebuild-from-source costs.
    let last = report.completions.last().expect("final f request");
    assert_eq!(last.function, fid("f"));
    let survivor = last.host.expect("served by a live host");
    assert!(survivor.index() > 0, "host 0 was drained away");
    assert!(cluster.host(survivor).residency(fid("f")).is_full());
    assert!(
        last.start_latency().expect("served") < Nanos::from_millis(100),
        "migrated snapshot must serve warm, got {:?}",
        last.start_latency()
    );
}

#[test]
fn stalled_handoff_past_deadline_forces_hard_removal() {
    let policy = ElasticPolicy {
        drain_deadline: Nanos::from_millis(10),
        migration: RecoveryPolicy {
            backoff_base: Nanos::from_millis(200),
            ..RecoveryPolicy::default()
        },
        ..sole_holder_policy()
    };
    // Every hand-off attempt stalls; the first retry's backoff already
    // overshoots the 10 ms drain budget, so the deadline fires with the
    // hand-off still pending and the host is hard-removed.
    let plan = FaultPlan::new(5).probability(FaultSite::MigrationStall, 1.0);
    let mut cluster = dedup_elastic(policy, plan);
    cluster.install(&spec("f")).expect("installs");
    cluster.install(&spec("g")).expect("installs");
    let reqs = sole_holder_schedule();
    let report = cluster.run(&mut SplitByFunction, &reqs);

    // Degraded, never lossy: the drain times out, but every request —
    // including the post-removal f, rebuilt from source — completes.
    assert!(report.completions.iter().all(|c| c.result.is_ok()));
    assert!(report.stats.migration_stalls >= 1, "{:?}", report.stats);
    assert!(
        report.stats.hard_removals >= 1,
        "the stalled drain must degrade to hard removal: {:?}",
        report.stats
    );
    assert_eq!(report.stats.migrations, 0, "{:?}", report.stats);
    assert!(
        report.audit_violations.is_empty(),
        "{:?}",
        report.audit_violations
    );
}

#[test]
fn idle_function_retires_to_archive_and_resurrects_on_demand() {
    let policy = ElasticPolicy {
        min_hosts: 1,
        max_hosts: 2,
        control_interval: Nanos::from_millis(50),
        retire_after: Some(Nanos::from_millis(200)),
        ..ElasticPolicy::default()
    };
    let mut cluster = dedup_elastic(policy, FaultPlan::new(9));
    cluster.install(&spec("f")).expect("installs");
    cluster.install(&spec("g")).expect("installs");
    // g stays hot the whole run (so the shared runtime/OS chunks stay
    // pinned on the host); f goes quiet past the retirement horizon,
    // then comes back.
    let mut reqs: Vec<EngineRequest> = (0..5)
        .map(|i| req_at(Nanos::from_millis(10) * i, "f"))
        .collect();
    for i in 0..84u64 {
        reqs.push(req_at(Nanos::from_millis(30) * i, "g"));
    }
    let f_return = Nanos::from_millis(2_000);
    for i in 0..3u64 {
        reqs.push(req_at(f_return + Nanos::from_millis(10) * i, "f"));
    }
    reqs.sort_by_key(|r| r.arrival);
    let report = cluster.run(&mut LocalityAffinity::new(), &reqs);

    assert!(report.completions.iter().all(|c| c.result.is_ok()));
    assert!(
        report.stats.retired_functions >= 1,
        "the idle stretch must retire f: {:?}",
        report.stats
    );
    assert!(
        report.stats.resurrections >= 1,
        "renewed demand must resurrect f: {:?}",
        report.stats
    );
    assert!(
        report.audit_violations.is_empty(),
        "{:?}",
        report.audit_violations
    );
    // Resurrection is a *delta* fetch from the archive: only f's unique
    // chunks cross the wire (g kept the shared image resident), so the
    // comeback start is far cheaper than the ~470 ms rebuild.
    let comeback = report
        .completions
        .iter()
        .find(|c| c.function == fid("f") && c.arrived >= f_return)
        .expect("f comes back");
    assert!(
        comeback.start_latency().expect("served") < Nanos::from_millis(300),
        "resurrected start must be a cheap delta fetch, got {:?}",
        comeback.start_latency()
    );
    // (f may legitimately be re-archived once its comeback burst goes
    // idle again — the archive set at run end is not asserted.)
}

#[test]
fn chaos_over_control_plane_fault_sites_loses_nothing() {
    // Two bursts separated by an idle valley: the first forces
    // scale-ups, the valley forces drains, the second forces re-growth
    // — every control-plane transition runs under a 50% fault rate.
    let schedule: Vec<EngineRequest> = (0..20)
        .map(|i| req_at(Nanos::from_millis(2) * i, "f"))
        .chain((0..20).map(|i| req_at(Nanos::from_millis(600) + Nanos::from_millis(2) * i, "f")))
        .collect();
    for site in [
        FaultSite::DrainInterrupt,
        FaultSite::MigrationStall,
        FaultSite::ScaleUpFail,
    ] {
        for seed in [42, 7] {
            let policy = ElasticPolicy {
                min_hosts: 1,
                max_hosts: 3,
                scale_up_queue: 1,
                scale_down_idle_ticks: 2,
                control_interval: Nanos::from_millis(10),
                boot_delay: Nanos::from_millis(20),
                drain_deadline: Nanos::from_millis(200),
                ..ElasticPolicy::default()
            };
            let plan = FaultPlan::new(seed).probability(site, 0.5);
            let mut cluster = dedup_elastic(policy, plan);
            cluster.install(&spec("f")).expect("installs");
            // `run` itself asserts request conservation; a lost request
            // panics the test. On top: the invariant auditor must stay
            // clean through every faulted membership event.
            let report = cluster.run(&mut LocalityAffinity::new(), &schedule);
            assert_eq!(report.completions.len(), schedule.len());
            assert!(
                report.audit_violations.is_empty(),
                "{:?}@{seed}: {:?}",
                site,
                report.audit_violations
            );
            assert!(
                report.completions.iter().all(|c| c.result.is_ok()),
                "{site:?}@{seed}: control-plane faults must not fail requests"
            );
        }
    }
}

#[test]
fn same_seed_elastic_chaos_runs_are_identical() {
    let run_once = || {
        let policy = ElasticPolicy {
            min_hosts: 1,
            max_hosts: 3,
            scale_up_queue: 1,
            scale_down_idle_ticks: 2,
            control_interval: Nanos::from_millis(10),
            boot_delay: Nanos::from_millis(20),
            ..ElasticPolicy::default()
        };
        let mut cluster = dedup_elastic(policy, FaultPlan::uniform(11, 0.02));
        cluster.install(&spec("f")).expect("installs");
        let reqs: Vec<EngineRequest> = (0..30)
            .map(|i| req_at(Nanos::from_millis(3) * i, "f"))
            .collect();
        let report = cluster.run(&mut LocalityAffinity::new(), &reqs);
        format!("{report:?}")
    };
    assert_eq!(run_once(), run_once(), "same seed, same bytes");
}
