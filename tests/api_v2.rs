//! Platform API v2 contract tests: trait-object safety, construction-time
//! configuration round-trips, and cluster determinism.

use fireworks::core::engine::EngineRequest;
use fireworks::prelude::*;

const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn spec(name: &str) -> FunctionSpec {
    FunctionSpec::new(
        name,
        SRC,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(100))]),
    )
}

fn req(name: &str, n: i64) -> InvokeRequest {
    InvokeRequest::new(fid(name), Value::map([("n".to_string(), Value::Int(n))]))
}

/// `Platform` must stay object-safe: a router or CLI holds heterogeneous
/// platforms behind one vtable and drives them uniformly.
#[test]
fn platform_is_object_safe() {
    let mut platforms: Vec<Box<dyn Platform>> = vec![
        Box::new(FireworksPlatform::new(PlatformEnv::default_env())),
        Box::new(OpenWhiskPlatform::new(PlatformEnv::default_env())),
        Box::new(GvisorPlatform::new(PlatformEnv::default_env())),
        Box::new(FirecrackerPlatform::new(
            PlatformEnv::default_env(),
            SnapshotPolicy::None,
        )),
    ];
    for p in &mut platforms {
        let dyn_ref: &mut dyn Platform = p.as_mut();
        dyn_ref.install(&spec("f")).expect("install via dyn");
        let inv = dyn_ref.invoke(&req("f", 10)).expect("invoke via dyn");
        assert_eq!(inv.value, Value::Int(45), "{}", dyn_ref.name());
    }
}

/// `run_chain` accepts an unsized platform, so chains work through the
/// same trait objects.
#[test]
fn chains_run_through_a_trait_object() {
    use fireworks::core::api::run_chain;
    // A stage that accepts either the head request's map or the previous
    // stage's integer output.
    const STAGE: &str = "
        fn main(params) {
            let n = params;
            if (type(params) == \"map\") { n = params[\"n\"]; }
            return n + 1;
        }";
    let stage_spec = FunctionSpec::new(
        "stage",
        STAGE,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(1))]),
    );
    let mut boxed: Box<dyn Platform> = Box::new(FireworksPlatform::new(PlatformEnv::default_env()));
    boxed.install(&stage_spec).expect("install");
    let stages = run_chain(
        boxed.as_mut(),
        &[fid("stage"), fid("stage")],
        &req("stage", 10),
    )
    .expect("chain");
    assert_eq!(stages.len(), 2);
    assert_eq!(
        stages[1].value,
        Value::Int(12),
        "10 + 1 + 1 through the chain"
    );
}

/// Every knob set through the builder must surface in the built config.
#[test]
fn builder_round_trips_every_field() {
    let recovery = RecoveryPolicy {
        max_attempts: 5,
        ..RecoveryPolicy::default()
    };
    let cfg = PlatformConfig::builder()
        .cache_budget(7 << 20)
        .recovery(recovery.clone())
        .paging(PagingPolicy::ColdStorage { reap: true })
        .keep_alive(Some(Nanos::from_secs(90)))
        .build();
    assert_eq!(cfg.cache_budget_bytes, 7 << 20);
    assert_eq!(cfg.recovery.max_attempts, 5);
    assert!(matches!(
        cfg.paging,
        PagingPolicy::ColdStorage { reap: true }
    ));
    assert_eq!(cfg.keep_alive, Some(Nanos::from_secs(90)));

    let defaults = PlatformConfig::default();
    assert_eq!(defaults.cache_budget_bytes, u64::MAX);
    assert_eq!(defaults.keep_alive, None);
}

/// `InvokeRequest` construction round-trips its fields, and `stage`
/// derives per-stage requests that inherit mode and deadline.
#[test]
fn invoke_request_round_trips_and_stages_inherit() {
    let r = InvokeRequest::new(fid("f"), Value::Int(1))
        .with_mode(StartMode::Cold)
        .with_deadline(Nanos::from_secs(3));
    assert_eq!(r.function, fid("f"));
    assert_eq!(&*r.function.name(), "f");
    assert_eq!(r.mode, StartMode::Cold);
    assert_eq!(r.deadline, Some(Nanos::from_secs(3)));
    let staged = r.stage(fid("g"), Value::Int(2));
    assert_eq!(staged.function, fid("g"));
    assert_eq!(staged.args, Value::Int(2));
    assert_eq!(staged.mode, StartMode::Cold, "stages inherit the mode");
    assert_eq!(staged.deadline, Some(Nanos::from_secs(3)));
}

/// A cluster run is a pure function of (config, schedule, seed): two
/// fresh runs must agree byte-for-byte on the full completion record and
/// the metrics snapshot, for every swept host count.
#[test]
fn cluster_runs_are_byte_identical() {
    for hosts in [1, 2, 4] {
        let run = || {
            let mut config = ClusterConfig::new(hosts, 2);
            config.platform = PlatformConfig::builder().cache_budget(340 << 20).build();
            let mut cluster = Cluster::new(config, |env, cfg| {
                FireworksPlatform::with_config(env, cfg.clone())
            });
            for i in 0..4 {
                cluster
                    .install(&spec(&format!("svc-{i}")))
                    .expect("install");
            }
            let schedule: Vec<EngineRequest> = (0..24)
                .map(|i| {
                    EngineRequest::at(
                        Nanos::from_millis(5 * (i as u64 / 4)),
                        req(&format!("svc-{}", i % 4), 50 + i as i64),
                    )
                })
                .collect();
            let mut router = LocalityAffinity::new();
            let report = cluster.run(&mut router, &schedule);
            let mut fingerprint = String::new();
            for c in &report.completions {
                fingerprint.push_str(&format!(
                    "{}:{:?}:{}:{}:{}:{:?}\n",
                    c.index,
                    c.host,
                    c.arrived,
                    c.started,
                    c.finished,
                    c.result.as_ref().map(|inv| inv.value.deep_clone())
                ));
            }
            fingerprint.push_str(&format!(
                "hits={} rebalances={} peaks={}/{}/{}\n",
                report.locality_hits,
                report.rebalances,
                report.peak_inflight,
                report.peak_host_queue_depth,
                report.peak_cluster_queue_depth,
            ));
            fingerprint.push_str(&cluster.obs().metrics().snapshot().to_json());
            fingerprint
        };
        assert_eq!(run(), run(), "cluster run diverged on {hosts} hosts");
    }
}

/// Deadlines are enforced cluster-wide: a request whose deadline passes
/// while queued is rejected without consuming a slot.
#[test]
fn cluster_rejects_expired_deadlines() {
    let mut cluster = Cluster::new(ClusterConfig::new(1, 1), |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    cluster.install(&spec("f")).expect("install");
    // Two simultaneous arrivals on one slot: the second waits behind a
    // multi-second install-grade start and its 1 ms deadline expires.
    let schedule = vec![
        EngineRequest::at(Nanos::ZERO, req("f", 100)),
        EngineRequest::at(
            Nanos::ZERO,
            req("f", 100).with_deadline(Nanos::from_millis(1)),
        ),
    ];
    let report = cluster.run(&mut RoundRobin::new(), &schedule);
    assert!(report.completions[0].result.is_ok());
    assert!(matches!(
        report.completions[1].result,
        Err(PlatformError::DeadlineExceeded { .. })
    ));
}
