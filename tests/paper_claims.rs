//! Shape claims from the paper's evaluation, asserted as tests.
//!
//! Absolute numbers depend on the testbed; what must reproduce is *who
//! wins, by roughly what factor* (see EXPERIMENTS.md). These tests pin the
//! qualitative claims with generous bands so the reproduction can't
//! silently drift.

use fireworks::prelude::*;
use fireworks::workloads::faasdom::Bench;

fn fw_invocation(bench: Bench, runtime: RuntimeKind) -> Invocation {
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = bench.spec(runtime);
    p.install(&spec).expect("install");
    p.invoke(&InvokeRequest::new(fid(&spec.name), bench.request_params()))
        .expect("invoke")
}

fn baseline_cold_warm(bench: Bench, runtime: RuntimeKind) -> (Invocation, Invocation) {
    let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    let spec = bench.spec(runtime);
    p.install(&spec).expect("install");
    let cold = p
        .invoke(
            &InvokeRequest::new(fid(&spec.name), bench.request_params()).with_mode(StartMode::Cold),
        )
        .expect("cold");
    let warm = p
        .invoke(
            &InvokeRequest::new(fid(&spec.name), bench.request_params()).with_mode(StartMode::Warm),
        )
        .expect("warm");
    (cold, warm)
}

/// A compute-heavy fact workload: enough calls that the Node profile's
/// tier-up thresholds are crossed mid-run, as in a real cold start.
fn heavy_fact_args() -> Value {
    Value::map([
        ("n".to_string(), Value::Int(1_299_709)),
        ("reps".to_string(), Value::Int(400)),
    ])
}

fn fw_heavy(runtime: RuntimeKind) -> Invocation {
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    let spec = Bench::Fact.paper_spec(runtime);
    p.install(&spec).expect("install");
    p.invoke(&InvokeRequest::new(fid(&spec.name), heavy_fact_args()))
        .expect("invoke")
}

fn baseline_heavy(runtime: RuntimeKind) -> (Invocation, Invocation) {
    let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    let spec = Bench::Fact.paper_spec(runtime);
    p.install(&spec).expect("install");
    let cold = p
        .invoke(&InvokeRequest::new(fid(&spec.name), heavy_fact_args()).with_mode(StartMode::Cold))
        .expect("cold");
    let warm = p
        .invoke(&InvokeRequest::new(fid(&spec.name), heavy_fact_args()).with_mode(StartMode::Warm))
        .expect("warm");
    (cold, warm)
}

/// §5.2.1(1): Fireworks start-up is on the order of 100× faster than a
/// microVM cold start (paper: up to 133×) and a small multiple faster
/// than warm starts (paper: up to 3.8×).
#[test]
fn startup_ratios_match_fig6_shape() {
    let fw = fw_invocation(Bench::Fact, RuntimeKind::NodeLike);
    let (cold, warm) = baseline_cold_warm(Bench::Fact, RuntimeKind::NodeLike);

    let cold_ratio = cold.breakdown.startup.ratio(fw.breakdown.startup);
    assert!(
        (60.0..300.0).contains(&cold_ratio),
        "cold startup ratio {cold_ratio:.1} (paper: up to 133×)"
    );
    let warm_ratio = warm.breakdown.startup.ratio(fw.breakdown.startup);
    assert!(
        (1.2..6.0).contains(&warm_ratio),
        "warm startup ratio {warm_ratio:.1} (paper: up to 3.8×)"
    );
}

/// §5.2.1(1): for Node.js compute code the exec gap is modest — the paper
/// reports ~38% faster than cold and ~25% faster than warm. Compared on
/// the pure-compute `exec` span (page-fault costs are a separate span).
#[test]
fn node_exec_gap_is_modest() {
    let fw = fw_heavy(RuntimeKind::NodeLike);
    let (cold, warm) = baseline_heavy(RuntimeKind::NodeLike);

    let vs_cold = cold
        .trace
        .total_for("exec")
        .ratio(fw.trace.total_for("exec"));
    let vs_warm = warm
        .trace
        .total_for("exec")
        .ratio(fw.trace.total_for("exec"));
    assert!(
        (1.1..3.0).contains(&vs_cold),
        "node exec vs cold {vs_cold:.2} (paper ~1.38)"
    );
    assert!(
        (0.95..2.0).contains(&vs_warm),
        "node exec vs warm {vs_warm:.2} (paper ~1.25; we model warm as fully tiered)"
    );
}

/// §5.2.2(1): for Python the post-JIT effect on execution is dramatic —
/// an order of magnitude (paper: 12–20× for faas-fact).
#[test]
fn python_exec_speedup_is_an_order_of_magnitude() {
    let fw = fw_heavy(RuntimeKind::PythonLike);
    let (cold, _) = baseline_heavy(RuntimeKind::PythonLike);
    let ratio = cold
        .trace
        .total_for("exec")
        .ratio(fw.trace.total_for("exec"));
    assert!(
        ratio > 10.0,
        "python exec speedup {ratio:.1} (paper: 12.3–20×)"
    );
    // And the invocation itself runs without compiling anything.
    assert_eq!(fw.stats.compiles, 0);
}

/// §5.2.2(3): I/O-bound behaviour is runtime-independent — disk latency
/// dominated by the sandbox path, similar for Node and Python.
#[test]
fn io_bound_latency_is_runtime_independent() {
    let node = fw_invocation(Bench::DiskIo, RuntimeKind::NodeLike);
    let py = fw_invocation(Bench::DiskIo, RuntimeKind::PythonLike);
    let node_io = node.trace.total_for("guest_io");
    let py_io = py.trace.total_for("guest_io");
    let ratio = py_io.ratio(node_io);
    assert!(
        (0.8..1.3).contains(&ratio),
        "disk I/O time should match across runtimes, ratio {ratio:.2}"
    );
}

/// §5.2.1(2): on the disk benchmark, execution+I/O ordering across
/// sandboxes is overlayfs (container) < virtio (microVM) < gVisor.
#[test]
fn disk_io_sandbox_ordering_matches_paper() {
    let spec = Bench::DiskIo.spec(RuntimeKind::NodeLike);
    let args = Bench::DiskIo.request_params();
    let io_of = |inv: &Invocation| inv.trace.total_for("guest_io");

    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    ow.install(&spec).expect("install");
    let cold =
        |name: &str| InvokeRequest::new(fid(name), args.deep_clone()).with_mode(StartMode::Cold);
    let ow_io = io_of(&ow.invoke(&cold(&spec.name)).expect("ow"));

    let mut fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    let fc_io = io_of(&fc.invoke(&cold(&spec.name)).expect("fc"));

    let mut gv = GvisorPlatform::new(PlatformEnv::default_env());
    gv.install(&spec).expect("install");
    let gv_io = io_of(&gv.invoke(&cold(&spec.name)).expect("gv"));

    assert!(ow_io < fc_io, "overlayfs {ow_io} < virtio {fc_io}");
    assert!(fc_io < gv_io, "virtio {fc_io} < gofer {gv_io}");
}

/// §5.1: post-JIT snapshot creation takes a fraction of a second.
#[test]
fn snapshot_creation_time_matches_section_5_1() {
    for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
        let mut p = FireworksPlatform::new(PlatformEnv::default_env());
        let spec = Bench::Fact.spec(runtime);
        let report = p.install(&spec).expect("install");
        // The whole install is seconds; the snapshot *write* itself is the
        // §5.1 claim (0.36–0.47 s) — bounded by pages × per-page cost.
        let write =
            CostModel::default().microvm.snapshot_write_per_page * report.snapshot_pages as u64;
        let secs = write.as_secs_f64();
        assert!(
            (0.15..0.8).contains(&secs),
            "{:?} snapshot write {secs:.2}s (paper 0.36–0.47 s)",
            runtime
        );
    }
}

/// §5.4: Fireworks consolidates substantially more microVMs than
/// Firecracker before the host starts swapping (paper: 565 vs 337, i.e.
/// ~1.67×).
#[test]
fn memory_density_beats_firecracker() {
    let ram = 6u64 << 30;
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Value::map([
        ("n".to_string(), Value::Int(1234)),
        ("reps".to_string(), Value::Int(1)),
    ]);

    let env_cfg = |ram: u64| EnvConfig {
        ram_bytes: ram,
        swappiness: 60,
        costs: CostModel::default(),
        ..EnvConfig::default()
    };

    let fw_env = PlatformEnv::new(env_cfg(ram));
    let mut fw = FireworksPlatform::new(fw_env.clone());
    fw.install(&spec).expect("install");
    let mut fw_clones = Vec::new();
    while !fw_env.host_mem.is_swapping() && fw_clones.len() < 400 {
        let (_, c) = fw.invoke_resident(fid(&spec.name), &args).expect("clone");
        fw_clones.push(c);
    }

    let fc_env = PlatformEnv::new(env_cfg(ram));
    let mut fc = FirecrackerPlatform::new(fc_env.clone(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    let mut fc_vms = Vec::new();
    while !fc_env.host_mem.is_swapping() && fc_vms.len() < 400 {
        let (_, vm) = fc.invoke_resident(fid(&spec.name), &args).expect("vm");
        fc_vms.push(vm);
    }

    let ratio = fw_clones.len() as f64 / fc_vms.len() as f64;
    assert!(
        ratio > 1.4,
        "fireworks fits {} vs firecracker {} VMs (ratio {ratio:.2}; paper 1.67)",
        fw_clones.len(),
        fc_vms.len()
    );
}

/// §5.5.1: factor analysis ordering — adding an OS-level snapshot helps,
/// adding the post-JIT snapshot helps more.
#[test]
fn factor_analysis_ordering_holds() {
    let bench = Bench::Fact;
    let runtime = RuntimeKind::PythonLike;
    let args = bench.request_params();

    let mut base = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    base.install(&bench.spec(runtime)).expect("install");
    let cold =
        |name: &str| InvokeRequest::new(fid(name), args.deep_clone()).with_mode(StartMode::Cold);
    let t_base = base
        .invoke(&cold(&bench.function_name(runtime)))
        .expect("base")
        .total();

    let mut os_snap =
        FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::OsSnapshot);
    os_snap.install(&bench.spec(runtime)).expect("install");
    let t_os = os_snap
        .invoke(&cold(&bench.function_name(runtime)))
        .expect("os")
        .total();

    let t_fw = fw_invocation(bench, runtime).total();

    assert!(t_os < t_base, "+OS snapshot {t_os} < baseline {t_base}");
    assert!(t_fw < t_os, "+post-JIT {t_fw} < +OS snapshot {t_os}");
}

/// Table 1: isolation levels across the implemented platforms.
#[test]
fn isolation_levels_match_table_1() {
    use fireworks::sandbox::IsolationLevel;
    let fw = FireworksPlatform::new(PlatformEnv::default_env());
    let fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    let ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    let gv = GvisorPlatform::new(PlatformEnv::default_env());
    assert_eq!(fw.isolation(), IsolationLevel::Vm);
    assert_eq!(fc.isolation(), IsolationLevel::Vm);
    assert_eq!(ow.isolation(), IsolationLevel::Container);
    assert_eq!(gv.isolation(), IsolationLevel::SecureContainer);
    assert!(fw.isolation() > ow.isolation());
    assert!(gv.isolation() > ow.isolation());
}

/// §5.3: only OpenWhisk and Fireworks can process chains of functions.
#[test]
fn chain_support_matches_paper() {
    let fw = FireworksPlatform::new(PlatformEnv::default_env());
    let ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    let gv = GvisorPlatform::new(PlatformEnv::default_env());
    let fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    assert!(fw.supports_chains());
    assert!(ow.supports_chains());
    assert!(!gv.supports_chains());
    assert!(!fc.supports_chains());
}

/// §6: de-optimisation — invoking with argument types that differ from
/// the JIT-warmed types still produces correct results, and performance
/// still beats the baseline (the paper's worst case).
#[test]
fn deopt_worst_case_is_correct_and_still_wins() {
    const POLY_SRC: &str = r#"
        fn describe(v) { return str(v) + "/" + type(v); }
        fn main(params) {
            let out = [];
            let items = params["items"];
            for (let i = 0; i < len(items); i = i + 1) {
                push(out, describe(items[i]));
            }
            return join(out, ",");
        }
    "#;
    // Warm-up uses ints; the real request mixes strings and ints, which
    // de-optimises any int-specialised sites in `describe`.
    let spec = FunctionSpec::new(
        "poly",
        POLY_SRC,
        RuntimeKind::NodeLike,
        Value::map([(
            "items".to_string(),
            Value::array((0..50).map(Value::Int).collect()),
        )]),
    );
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    p.install(&spec).expect("install");
    let mixed = Value::map([(
        "items".to_string(),
        Value::array(vec![
            Value::Int(1),
            Value::str("two"),
            Value::Int(3),
            Value::Bool(true),
        ]),
    )]);
    let inv = p
        .invoke(&InvokeRequest::new(fid("poly"), mixed))
        .expect("invoke");
    assert_eq!(inv.value, Value::str("1/int,two/string,3/int,true/bool"));
}
