//! Content-addressed snapshot distribution: peer delta fetch,
//! donor-crash fallback, and cluster byte-determinism.

use fireworks::core::engine::EngineRequest;
use fireworks::core::{ChunkMesh, ConcurrentPlatform, SnapshotResidency, SnapshotStorePolicy};
use fireworks::obs::Obs;
use fireworks::prelude::*;

const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn spec(name: &str) -> FunctionSpec {
    FunctionSpec::new(
        name,
        SRC,
        RuntimeKind::NodeLike,
        Value::map([("n".to_string(), Value::Int(100))]),
    )
}

fn req(name: &str, n: i64) -> InvokeRequest {
    InvokeRequest::new(fid(name), Value::map([("n".to_string(), Value::Int(n))]))
}

fn dedup_config() -> PlatformConfig {
    PlatformConfig::builder()
        .snapshot_store(SnapshotStorePolicy::dedup())
        .build()
}

/// Two dedup hosts on one clock/obs/mesh; `plan0` arms host 0's fault
/// injector. Host 0 installs `f` (and publishes it); host 1 only
/// registers it, so its first invocation is a remote miss.
fn two_host_mesh(
    plan0: FaultPlan,
) -> (
    FireworksPlatform,
    FireworksPlatform,
    fireworks::core::SharedChunkMesh,
    Obs,
) {
    let clock = Clock::new();
    let obs = Obs::new(clock.clone());
    let mesh = ChunkMesh::shared();
    let env0 = PlatformEnv::with_shared(
        EnvConfig {
            fault_plan: plan0,
            ..EnvConfig::default()
        },
        clock.clone(),
        obs.clone(),
    );
    let env1 = PlatformEnv::with_shared(EnvConfig::default(), clock, obs.clone());
    let mut p0 = FireworksPlatform::with_config(env0, dedup_config());
    let mut p1 = FireworksPlatform::with_config(env1, dedup_config());
    p0.attach_mesh(mesh.clone(), HostId::from_index(0));
    p1.attach_mesh(mesh.clone(), HostId::from_index(1));
    p0.install(&spec("f")).expect("install on host 0");
    p1.register(&spec("f")).expect("register on host 1");
    (p0, p1, mesh, obs)
}

/// A remote miss on a mesh peer is served by fetching only the missing
/// chunks from the donor — far cheaper than rebuilding from source —
/// and the fetcher's residency moves Partial → Full.
#[test]
fn peer_miss_is_served_by_delta_fetch() {
    let (_p0, mut p1, _mesh, obs) = two_host_mesh(FaultPlan::new(0));

    // Before the fetch: host 1 holds none of the chunks, but the mesh
    // knows a donor exists, so residency is Partial with the full
    // transfer cost.
    match p1.residency(fid("f")) {
        SnapshotResidency::Partial { missing_bytes } => {
            assert!(missing_bytes > 0, "nothing fetched yet")
        }
        other => panic!("expected Partial before the fetch, got {other:?}"),
    }

    let inv = p1.invoke(&req("f", 100)).expect("delta-fetched invoke");
    assert_eq!(inv.value, Value::Int(4950));
    assert!(
        p1.residency(fid("f")).is_full(),
        "snapshot now cached locally"
    );

    let snap = obs.metrics().snapshot();
    let labels: &[(&'static str, &str)] = &[("function", "f")];
    assert_eq!(snap.counter("core.delta.fetches", labels), 1);
    assert!(snap.counter("core.delta.chunks_fetched", labels) > 0);
    assert!(snap.counter("core.delta.bytes_fetched", labels) > 0);
    assert_eq!(snap.counter("core.delta.fallbacks", labels), 0);

    // The delta fetch must beat a from-source rebuild (a control host
    // with no mesh pays install-grade boot + JIT on its miss).
    let mut control = FireworksPlatform::with_config(PlatformEnv::default_env(), dedup_config());
    control.register(&spec("f")).expect("register");
    let rebuilt = control.invoke(&req("f", 100)).expect("rebuild invoke");
    assert!(
        inv.breakdown.startup.as_nanos() * 4 < rebuilt.breakdown.startup.as_nanos(),
        "delta startup {} should be well below rebuild startup {}",
        inv.breakdown.startup,
        rebuilt.breakdown.startup
    );
}

/// `FaultSite::HostCrash` drawn on the donor mid-transfer: the fetcher
/// releases the staged chunks, marks the donor dead mesh-wide, and falls
/// back to rebuild-from-source — the invocation still succeeds.
#[test]
fn donor_crash_mid_transfer_falls_back_to_rebuild() {
    let plan0 = FaultPlan::new(7).probability(FaultSite::HostCrash, 1.0);
    let (_p0, mut p1, mesh, obs) = two_host_mesh(plan0);

    let inv = p1.invoke(&req("f", 100)).expect("fallback invoke");
    assert_eq!(inv.value, Value::Int(4950), "rebuild served the request");

    let snap = obs.metrics().snapshot();
    let labels: &[(&'static str, &str)] = &[("function", "f")];
    assert_eq!(snap.counter("core.delta.fallbacks", labels), 1);
    assert_eq!(snap.counter("core.delta.fetches", labels), 0);
    assert_eq!(
        mesh.borrow().dead_hosts(),
        vec![HostId::from_index(0)],
        "donor reported dead"
    );
    // The dead donor is never offered again: the next miss on a third
    // host would rebuild too.
    assert!(mesh
        .borrow()
        .donor_for(fid("f"), HostId::from_index(1))
        .is_none());
    assert!(
        p1.residency(fid("f")).is_full(),
        "rebuild landed in the cache"
    );
}

/// A dedup cluster run — home-host installs, delta fetches on remote
/// misses, and an injected `HostCrash` — is a pure function of
/// (config, schedule, seed): two fresh runs agree byte-for-byte.
#[test]
fn dedup_cluster_runs_stay_byte_identical_under_host_crash() {
    let run = || {
        let mut config = ClusterConfig::new(3, 2);
        config.platform = PlatformConfig::builder()
            .snapshot_store(SnapshotStorePolicy::dedup())
            .build();
        config.env.fault_plan = FaultPlan::new(42).nth(FaultSite::HostCrash, 2);
        let mut cluster = Cluster::new(config, |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        for i in 0..4 {
            cluster
                .install_home(&spec(&format!("svc-{i}")))
                .expect("install_home");
        }
        let schedule: Vec<EngineRequest> = (0..24)
            .map(|i| {
                EngineRequest::at(
                    Nanos::from_millis(5 * (i as u64 / 4)),
                    req(&format!("svc-{}", i % 4), 50 + i as i64),
                )
            })
            .collect();
        let mut router = LocalityAffinity::new();
        let report = cluster.run(&mut router, &schedule);
        let mut fingerprint = String::new();
        for c in &report.completions {
            fingerprint.push_str(&format!(
                "{}:{:?}:{}:{}:{}:{:?}\n",
                c.index,
                c.host,
                c.arrived,
                c.started,
                c.finished,
                c.result.as_ref().map(|inv| inv.value.deep_clone())
            ));
        }
        fingerprint.push_str(&cluster.obs().metrics().snapshot().to_json());
        fingerprint
    };
    let first = run();
    assert!(
        first.contains("cluster.host_crashes"),
        "the injected crash must actually fire"
    );
    assert_eq!(first, run(), "dedup cluster run diverged");
}
