//! Randomised platform exercising: a seeded stream of installs, invokes
//! (cold/warm/auto), evictions, clock jumps, and resident clones against
//! every platform. Invariants: no panics, correct results for known
//! inputs, monotone clock, and no host-memory leaks after teardown.

use fireworks::prelude::*;
use fireworks::sim::rng::SplitMix64;

const FUNCS: [&str; 3] = ["alpha", "beta", "gamma"];

/// alpha(n) = n², beta(n) = sum 0..n, gamma builds and folds an array.
fn source_for(name: &str) -> String {
    match name {
        "alpha" => "fn main(p) { let n = p[\"n\"]; return n * n; }".to_string(),
        "beta" => "fn main(p) {
            let n = p[\"n\"];
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }"
        .to_string(),
        _ => "fn main(p) {
            let n = p[\"n\"];
            let a = [];
            for (let i = 0; i < n; i = i + 1) { push(a, i * 2); }
            let t = 0;
            for (let i = 0; i < len(a); i = i + 1) { t = t + a[i]; }
            return t;
        }"
        .to_string(),
    }
}

fn expected(name: &str, n: i64) -> Value {
    match name {
        "alpha" => Value::Int(n * n),
        "beta" => Value::Int(n * (n - 1) / 2),
        _ => Value::Int(n * (n - 1)),
    }
}

fn args(n: i64) -> Value {
    Value::map([("n".to_string(), Value::Int(n))])
}

fn fuzz_platform<P: Platform>(mut platform: P, seed: u64, steps: u32) {
    let mut rng = SplitMix64::new(seed);
    let mut installed: Vec<&str> = Vec::new();
    let mut cold_seen: std::collections::HashSet<&str> = Default::default();
    for step in 0..steps {
        match rng.next_below(10) {
            0 | 1 => {
                // Install (or reinstall) a function.
                let name = *rng.choose(&FUNCS);
                platform
                    .install(&FunctionSpec::new(
                        name,
                        source_for(name),
                        RuntimeKind::NodeLike,
                        args(7),
                    ))
                    .unwrap_or_else(|e| panic!("step {step}: install {name}: {e}"));
                if !installed.contains(&name) {
                    installed.push(name);
                }
                cold_seen.remove(name);
            }
            2 => {
                // Evict warm sandboxes.
                if let Some(name) = installed.last() {
                    platform.evict(fid(name));
                    cold_seen.remove(*name);
                }
            }
            3 => {
                // Invoking an unknown function must error, not panic.
                assert!(matches!(
                    platform.invoke(&InvokeRequest::new(fid("ghost"), args(1))),
                    Err(PlatformError::UnknownFunction(_))
                ));
            }
            _ => {
                // Invoke an installed function with a random small n.
                if installed.is_empty() {
                    continue;
                }
                let name = *rng.choose(&installed);
                let n = rng.next_range(2, 40) as i64;
                let mode = match rng.next_below(3) {
                    0 => StartMode::Cold,
                    1 if cold_seen.contains(name) => StartMode::Warm,
                    _ => StartMode::Auto,
                };
                let inv = platform
                    .invoke(&InvokeRequest::new(fid(name), args(n)).with_mode(mode))
                    .unwrap_or_else(|e| panic!("step {step}: invoke {name}({n}) {mode:?}: {e}"));
                assert_eq!(
                    inv.value,
                    expected(name, n),
                    "step {step}: {name}({n}) wrong result"
                );
                if mode == StartMode::Cold {
                    cold_seen.insert(name);
                }
            }
        }
    }
}

#[test]
fn fuzz_fireworks() {
    for seed in [1, 2, 3] {
        let env = PlatformEnv::default_env();
        let clock = env.clock.clone();
        let before = clock.now();
        fuzz_platform(FireworksPlatform::new(env), seed, 60);
        assert!(clock.now() > before, "clock must advance");
    }
}

#[test]
fn fuzz_openwhisk() {
    for seed in [4, 5] {
        fuzz_platform(OpenWhiskPlatform::new(PlatformEnv::default_env()), seed, 60);
    }
}

#[test]
fn fuzz_gvisor_both_modes() {
    fuzz_platform(GvisorPlatform::new(PlatformEnv::default_env()), 6, 50);
    fuzz_platform(
        GvisorPlatform::with_config(PlatformEnv::default_env(), true, PlatformConfig::default()),
        7,
        50,
    );
}

#[test]
fn fuzz_firecracker_both_policies() {
    fuzz_platform(
        FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None),
        8,
        50,
    );
    fuzz_platform(
        FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::OsSnapshot),
        9,
        50,
    );
}

#[test]
fn fuzz_resident_clones_do_not_leak() {
    let env = PlatformEnv::default_env();
    let mut p = FireworksPlatform::new(env.clone());
    p.install(&FunctionSpec::new(
        "alpha",
        source_for("alpha"),
        RuntimeKind::NodeLike,
        args(7),
    ))
    .expect("install");
    let baseline = env.host_mem.used_bytes();
    let mut rng = SplitMix64::new(11);
    for _ in 0..5 {
        let mut clones = Vec::new();
        for _ in 0..rng.next_range(1, 6) {
            let (_, c) = p.invoke_resident(fid("alpha"), &args(9)).expect("clone");
            clones.push(c);
        }
        for c in clones {
            p.release_clone(c);
        }
        // All clone memory returns to the host; only the pinned snapshot
        // remains.
        assert_eq!(env.host_mem.used_bytes(), baseline);
    }
}

// ---------------------------------------------------------------------------
// Property: chunk-store refcounts always match the live manifests.
// ---------------------------------------------------------------------------

use fireworks::core::{ChunkMesh, ConcurrentPlatform, SnapshotStorePolicy};
use fireworks::obs::Obs;
use proptest::prelude::*;

/// One step of the mesh interleaving driven below.
#[derive(Debug, Clone)]
enum MeshOp {
    /// Full install (build + publish) on `host`.
    Install { host: u8, func: u8 },
    /// Invoke on `host`, registering first if needed — a miss pays a
    /// delta fetch (possibly aborted by a donor crash) or a rebuild.
    Invoke { host: u8, func: u8 },
    /// Scale-to-zero retirement of one function on `host`.
    Retire { host: u8, func: u8 },
    /// Hard crash: `host` goes dead mesh-wide, mid-whatever it held.
    Crash { host: u8 },
    /// Graceful drain: hand every hot snapshot to a survivor, retire
    /// the local copies, then leave the mesh without a dead record.
    Drain { host: u8 },
}

fn mesh_op_strategy() -> impl Strategy<Value = MeshOp> {
    prop_oneof![
        3 => (0u8..3, 0u8..3).prop_map(|(host, func)| MeshOp::Install { host, func }),
        4 => (0u8..3, 0u8..3).prop_map(|(host, func)| MeshOp::Invoke { host, func }),
        2 => (0u8..3, 0u8..3).prop_map(|(host, func)| MeshOp::Retire { host, func }),
        1 => (0u8..3).prop_map(|host| MeshOp::Crash { host }),
        1 => (0u8..3).prop_map(|host| MeshOp::Drain { host }),
    ]
}

fn mesh_spec(name: &str) -> FunctionSpec {
    FunctionSpec::new(name, source_for(name), RuntimeKind::NodeLike, args(9))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Under arbitrary interleavings of install / invoke / retire /
    /// crash / drain across a three-host dedup mesh — with donor
    /// crashes randomly aborting delta transfers mid-flight — every
    /// host's chunk-store refcount ledger stays exactly in sync with
    /// its live cached manifests: no orphaned chunks from released
    /// staging, no dangling references from eviction or retirement.
    #[test]
    fn chunk_refcounts_match_live_manifests_under_interleavings(
        ops in proptest::collection::vec(mesh_op_strategy(), 1..32),
    ) {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        let mesh = ChunkMesh::shared();
        let config = PlatformConfig::builder()
            .snapshot_store(SnapshotStorePolicy::dedup())
            .build();
        let mut hosts: Vec<FireworksPlatform> = (0..3usize)
            .map(|h| {
                let env = PlatformEnv::with_shared(
                    EnvConfig {
                        // Arm donor crashes so some delta transfers
                        // abort mid-flight and must release staged
                        // chunks instead of leaking references.
                        fault_plan: FaultPlan::new(0xE1A5 + h as u64)
                            .probability(FaultSite::HostCrash, 0.15),
                        ..EnvConfig::default()
                    },
                    clock.clone(),
                    obs.clone(),
                );
                let mut p = FireworksPlatform::with_config(env, config.clone());
                p.attach_mesh(mesh.clone(), HostId::from_index(h));
                p
            })
            .collect();
        // Hosts we still drive: a crashed or drained host takes no
        // further ops, but its store must stay internally consistent.
        let mut alive = [true; 3];
        let mut registered: Vec<std::collections::BTreeSet<String>> =
            vec![Default::default(); 3];

        for op in ops {
            match &op {
                MeshOp::Install { host, func } => {
                    let (h, name) = (*host as usize, FUNCS[*func as usize]);
                    if alive[h] {
                        hosts[h].install(&mesh_spec(name)).expect("install");
                        registered[h].insert(name.to_string());
                    }
                }
                MeshOp::Invoke { host, func } => {
                    let (h, name) = (*host as usize, FUNCS[*func as usize]);
                    if alive[h] {
                        if !registered[h].contains(name) {
                            hosts[h].register(&mesh_spec(name)).expect("register");
                            registered[h].insert(name.to_string());
                        }
                        let inv = hosts[h]
                            .invoke(&InvokeRequest::new(fid(name), args(9)))
                            .expect("invoke");
                        prop_assert_eq!(inv.value, expected(name, 9));
                    }
                }
                MeshOp::Retire { host, func } => {
                    let (h, name) = (*host as usize, FUNCS[*func as usize]);
                    if alive[h] {
                        hosts[h].retire(fid(name));
                    }
                }
                MeshOp::Crash { host } => {
                    let h = *host as usize;
                    if alive[h] && alive.iter().filter(|a| **a).count() > 1 {
                        mesh.borrow_mut().mark_dead(HostId::from_index(h));
                        alive[h] = false;
                    }
                }
                MeshOp::Drain { host } => {
                    let h = *host as usize;
                    if alive[h] && alive.iter().filter(|a| **a).count() > 1 {
                        let successor =
                            (0..3).find(|&s| s != h && alive[s]).expect("a survivor");
                        for f in hosts[h].hot_functions() {
                            let name = f.name();
                            if !registered[successor].contains(&*name) {
                                hosts[successor]
                                    .register(&mesh_spec(&name))
                                    .expect("register");
                                registered[successor].insert(name.to_string());
                            }
                            // Opportunistic: a donor crash mid-handoff
                            // just means the successor rebuilds later.
                            hosts[successor].prewarm(f);
                            hosts[h].retire(f);
                        }
                        mesh.borrow_mut().deregister(HostId::from_index(h));
                        alive[h] = false;
                    }
                }
            }
            // The invariant, after *every* op, on every host — dead
            // ones included (a crash strands the mesh record, never
            // the local ledger).
            for (h, p) in hosts.iter().enumerate() {
                let violations = p.store_audit().expect("dedup store").verify();
                prop_assert!(
                    violations.is_empty(),
                    "host {} store inconsistent after {:?}: {:?}",
                    h,
                    op,
                    violations
                );
            }
        }
    }
}
