//! Memory density: how many concurrent sandboxes fit on one host before
//! swapping starts — a miniature of the paper's Fig. 10.
//!
//! Fireworks clones share the snapshot copy-on-write, so each additional
//! clone only costs its private write set; plain Firecracker VMs have
//! fully private memory.
//!
//! ```sh
//! cargo run --release --example memory_density
//! ```

use fireworks::prelude::*;
use fireworks::workloads::faasdom::Bench;

const HOST_RAM: u64 = 8 << 30;

fn env() -> PlatformEnv {
    PlatformEnv::new(EnvConfig {
        ram_bytes: HOST_RAM,
        swappiness: 60,
        costs: CostModel::default(),
        ..EnvConfig::default()
    })
}

fn main() {
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.request_params();

    // Fireworks: restore clones from one shared snapshot.
    let fw_env = env();
    let mut fw = FireworksPlatform::new(fw_env.clone());
    fw.install(&spec).expect("install");
    let mut clones = Vec::new();
    while !fw_env.host_mem.is_swapping() {
        let (_, mut clone) = fw.invoke_resident(fid(&spec.name), &args).expect("clone");
        // Model continued service until swap onset, like the paper's
        // methodology (see fig10's SERVICE_AGE_OPS).
        clone.age_ops(50_000_000);
        clones.push(clone);
        if clones.len() % 16 == 0 {
            println!(
                "fireworks: {:>4} clones, host {:>6.2} GiB used, PSS/clone {:>6.1} MiB",
                clones.len(),
                fw_env.host_mem.used_bytes() as f64 / (1 << 30) as f64,
                clones.last().map(|c| c.pss_bytes()).unwrap_or(0) as f64 / (1 << 20) as f64,
            );
        }
    }
    let fireworks_count = clones.len();
    drop(clones);
    drop(fw);

    // Firecracker: every VM cold-boots with private memory.
    let fc_env = env();
    let mut fc = FirecrackerPlatform::new(fc_env.clone(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    let mut vms = Vec::new();
    while !fc_env.host_mem.is_swapping() {
        let (_, mut vm) = fc.invoke_resident(fid(&spec.name), &args).expect("vm");
        vm.age_ops(50_000_000);
        vms.push(vm);
        if vms.len() % 16 == 0 {
            println!(
                "firecracker: {:>3} VMs, host {:>6.2} GiB used",
                vms.len(),
                fc_env.host_mem.used_bytes() as f64 / (1 << 30) as f64,
            );
        }
    }
    let firecracker_count = vms.len();
    drop(vms);

    println!();
    println!(
        "host RAM {} GiB, swap onset at 60% (vm.swappiness)",
        HOST_RAM >> 30
    );
    println!("fireworks   : {fireworks_count} microVMs before swapping");
    println!("firecracker : {firecracker_count} microVMs before swapping");
    println!(
        "consolidation: {:.0}% more sandboxes (paper: 167% more at 128 GiB scale)",
        (fireworks_count as f64 / firecracker_count as f64 - 1.0) * 100.0
    );
}
