//! Run the ServerlessBench Alexa Skills application — a chain of
//! serverless functions over the document store — on Fireworks and on
//! OpenWhisk (the only two platforms that can run chains, §5.3).
//!
//! ```sh
//! cargo run --example alexa_skills
//! ```

use fireworks::prelude::*;
use fireworks::workloads::generators::AlexaRequestGen;
use fireworks_workloads::serverlessbench::StageResult;

fn drive<P: Platform>(platform: &mut P, requests: u32) {
    AlexaApp::install(platform).expect("install");
    let mut gen = AlexaRequestGen::new(2024);
    let mut total_startup = Nanos::ZERO;
    let mut total_exec = Nanos::ZERO;
    println!("--- {} ---", platform.name());
    for i in 0..requests {
        let utterance = gen.next_utterance();
        let stages: Vec<StageResult> =
            AlexaApp::run(platform, &utterance, StartMode::Auto).expect("request");
        let skill = &stages[1];
        if i < 5 {
            println!(
                "  \"{}\" → [{}] {}",
                utterance,
                skill.stage,
                skill
                    .invocation
                    .response
                    .as_deref()
                    .unwrap_or("(no response)")
            );
        }
        for s in &stages {
            total_startup += s.invocation.breakdown.startup;
            total_exec += s.invocation.breakdown.exec;
        }
    }
    println!("  totals over {requests} requests: startup {total_startup}, exec {total_exec}");
}

fn main() {
    let requests = 12;

    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    drive(&mut fw, requests);

    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    drive(&mut ow, requests);

    println!();
    println!("Fireworks serves every stage from a post-JIT snapshot; OpenWhisk");
    println!("pays container cold starts until its warm pool fills.");
}
