//! Run a Flame source file directly — the guest-language developer tool.
//!
//! ```sh
//! cargo run --example flame_run -- path/to/program.flame [int-arg]
//! echo 'fn main(n) { print("6*7 =", n * 7); return n * 7; }' > /tmp/p.flame
//! cargo run --example flame_run -- /tmp/p.flame 6
//! ```
//!
//! Flags:
//!   --no-jit        run pure interpreter
//!   --annotate      print the Fireworks-annotated source and exit
//!   --disasm        print the bytecode disassembly and exit

use std::rc::Rc;

use fireworks::annotator::{annotate, AnnotationConfig};
use fireworks::lang::{compile, Host, JitPolicy, LangError, Outcome, Value, Vm};

/// Serves prints to stdout and a few benign host calls.
struct CliHost;

impl Host for CliHost {
    fn print(&mut self, text: &str) {
        println!("{text}");
    }

    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError> {
        match name {
            "io_read" => Ok(args.get(1).cloned().unwrap_or(Value::Int(0))),
            "io_write" | "net_send" => Ok(Value::Null),
            "http_respond" => {
                println!(
                    "[http response] {}",
                    args.first().map(Value::to_string).unwrap_or_default()
                );
                Ok(Value::Null)
            }
            "default_params" => Ok(Value::map([])),
            other => Err(LangError::runtime(format!(
                "host call `{other}` is not available in flame_run"
            ))),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&String> = args.iter().filter(|a| a.starts_with("--")).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let Some(path) = positional.first() else {
        eprintln!("usage: flame_run [--no-jit|--annotate|--disasm] <file.flame> [int-arg]");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let arg: i64 = positional
        .get(1)
        .map(|s| s.parse().expect("int argument"))
        .unwrap_or(0);

    if flags.iter().any(|f| *f == "--annotate") {
        match annotate(&source, &AnnotationConfig::default()) {
            Ok(a) => println!("{}", a.source),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let program = match compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    if flags.iter().any(|f| *f == "--disasm") {
        for f in &program.functions {
            println!("{}", f.chunk.disassemble());
        }
        return;
    }

    let policy = if flags.iter().any(|f| *f == "--no-jit") {
        JitPolicy::Off
    } else {
        JitPolicy::default()
    };
    let mut vm = Vm::with_policy(Rc::new(program), policy);
    // Run the module body first if there is one.
    if vm
        .program()
        .function(fireworks::lang::compiler::TOPLEVEL)
        .is_some()
    {
        vm.start(fireworks::lang::compiler::TOPLEVEL, vec![])
            .expect("toplevel starts");
        loop {
            match vm.run(&mut CliHost) {
                Ok(Outcome::Done(_)) => break,
                Ok(Outcome::Snapshot) => continue,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if vm.program().function("main").is_none() {
        return;
    }
    if let Err(e) = vm.start("main", vec![Value::Int(arg)]) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    loop {
        match vm.run(&mut CliHost) {
            Ok(Outcome::Done(v)) => {
                println!("=> {v}");
                let stats = vm.stats();
                eprintln!(
                    "[{} ops: {} interp, {} jit; {} compiles, {} deopts]",
                    stats.total_ops(),
                    stats.interp_ops,
                    stats.jit_ops,
                    stats.compiles,
                    stats.deopts
                );
                return;
            }
            Ok(Outcome::Snapshot) => {
                eprintln!("[snapshot point — resuming]");
                continue;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
