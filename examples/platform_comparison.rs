//! Compare cold, warm, and Fireworks starts across all four platforms on
//! one FaaSdom benchmark — a miniature of the paper's Fig. 6(a).
//!
//! ```sh
//! cargo run --example platform_comparison [fact|matrix|diskio|netlatency]
//! ```

use fireworks::prelude::*;
use fireworks::workloads::faasdom::Bench;

fn row(label: &str, inv: &Invocation) {
    println!(
        "  {label:<18} {:>12} {:>12} {:>12} {:>12}",
        format!("{}", inv.breakdown.startup),
        format!("{}", inv.breakdown.exec),
        format!("{}", inv.breakdown.other),
        format!("{}", inv.total()),
    );
}

fn run_platform<P: Platform>(mut platform: P, spec: &FunctionSpec, args: &Value) {
    platform.install(spec).expect("install");
    let cold = platform
        .invoke(&InvokeRequest::new(fid(&spec.name), args.deep_clone()).with_mode(StartMode::Cold))
        .expect("cold");
    row(&format!("{} (c)", platform.name()), &cold);
    let warm = platform
        .invoke(&InvokeRequest::new(fid(&spec.name), args.deep_clone()).with_mode(StartMode::Warm))
        .expect("warm");
    row(&format!("{} (w)", platform.name()), &warm);
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fact".to_string());
    let bench = match which.as_str() {
        "fact" => Bench::Fact,
        "matrix" => Bench::MatrixMult,
        "diskio" => Bench::DiskIo,
        "netlatency" => Bench::NetLatency,
        other => {
            eprintln!("unknown benchmark `{other}` (use fact|matrix|diskio|netlatency)");
            std::process::exit(2);
        }
    };
    let spec = bench.spec(RuntimeKind::NodeLike);
    let args = bench.request_params();

    println!("benchmark: {} (Node.js profile)", bench.name());
    println!(
        "  {:<18} {:>12} {:>12} {:>12} {:>12}",
        "platform", "startup", "exec", "others", "total"
    );

    // Each platform gets its own pristine host so numbers are independent.
    run_platform(
        OpenWhiskPlatform::new(PlatformEnv::default_env()),
        &spec,
        &args,
    );
    run_platform(
        GvisorPlatform::new(PlatformEnv::default_env()),
        &spec,
        &args,
    );
    run_platform(
        FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None),
        &spec,
        &args,
    );

    // Fireworks has no cold/warm split: every start restores the post-JIT
    // snapshot.
    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    fw.install(&spec).expect("install");
    let inv = fw
        .invoke(&InvokeRequest::new(fid(&spec.name), args))
        .expect("invoke");
    row("fireworks (both)", &inv);
}
