//! Quickstart: install one serverless function on Fireworks and invoke it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fireworks::prelude::*;

fn main() {
    // One simulated host: virtual clock, memory, message bus, store, NAT.
    let env = PlatformEnv::default_env();
    let mut platform = FireworksPlatform::new(env);

    // A user's serverless function: count primes below `params["limit"]`.
    let source = r#"
        fn is_prime(n) {
            if (n < 2) { return false; }
            let d = 2;
            while (d * d <= n) {
                if (n % d == 0) { return false; }
                d = d + 1;
            }
            return true;
        }
        fn main(params) {
            let limit = params["limit"];
            let count = 0;
            for (let n = 2; n < limit; n = n + 1) {
                if (is_prime(n)) { count = count + 1; }
            }
            http_respond("primes: " + str(count));
            return count;
        }
    "#;
    let spec = FunctionSpec::new(
        "count-primes",
        source,
        RuntimeKind::NodeLike,
        Value::map([("limit".to_string(), Value::Int(5_000))]),
    );

    // Install: annotate, boot a microVM, JIT the function, snapshot.
    let report = platform.install(&spec).expect("install failed");
    println!("== install (once per function) ==");
    println!("  install time      : {}", report.install_time);
    println!(
        "  snapshot          : {} pages / {:.1} MiB on disk",
        report.snapshot_pages,
        report.snapshot_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("  @jit annotations  : {}", report.annotated_functions);

    // Invoke twice with different arguments: each invocation restores the
    // post-JIT snapshot, fetches its own arguments from the message bus,
    // and runs fully JIT-compiled.
    for limit in [10_000i64, 20_000] {
        let args = Value::map([("limit".to_string(), Value::Int(limit))]);
        let inv = platform
            .invoke(&InvokeRequest::new(fid("count-primes"), args))
            .expect("invoke failed");
        println!("== invoke limit={limit} ==");
        println!("  result            : {}", inv.value);
        println!(
            "  response          : {}",
            inv.response.as_deref().unwrap_or("-")
        );
        println!("  start-up          : {}", inv.breakdown.startup);
        println!("  exec              : {}", inv.breakdown.exec);
        println!("  others            : {}", inv.breakdown.other);
        println!("  end-to-end        : {}", inv.total());
        println!(
            "  JIT tier ops      : {} ({} interpreter, {} compiles)",
            inv.stats.jit_ops, inv.stats.interp_ops, inv.stats.compiles
        );
    }
}
