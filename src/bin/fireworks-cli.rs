//! `fireworks-cli` — deploy and invoke a serverless function from a Flame
//! source file on any of the simulated platforms.
//!
//! ```sh
//! echo 'fn main(p) { return p["n"] * 2; }' > /tmp/double.flame
//! cargo run --bin fireworks-cli -- run /tmp/double.flame --args '{ n: 21 }'
//! cargo run --bin fireworks-cli -- run /tmp/double.flame --platform openwhisk --args '{ n: 21 }'
//! cargo run --bin fireworks-cli -- annotate /tmp/double.flame
//! ```

use std::process::exit;
use std::rc::Rc;

use fireworks::annotator::{annotate, AnnotationConfig};
use fireworks::lang::{compile, NoopHost, Outcome, Value, Vm};
use fireworks::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:
  fireworks-cli run <file.flame> [--platform fireworks|openwhisk|gvisor|firecracker]
                    [--runtime node|python] [--args <flame-expr>] [--invocations N]
  fireworks-cli annotate <file.flame>

The --args expression is Flame, e.g. --args '{{ n: 21, name: \"x\" }}'"
    );
    exit(2)
}

/// Evaluates a Flame expression (for `--args`) by wrapping it in a
/// function and running it on a throwaway VM.
fn eval_expr(expr: &str) -> Result<Value, String> {
    let src = format!("fn __expr__() {{ return {expr}; }}");
    let program = compile(&src).map_err(|e| e.to_string())?;
    let mut vm = Vm::new(Rc::new(program));
    vm.start("__expr__", vec![]).map_err(|e| e.to_string())?;
    match vm.run(&mut NoopHost).map_err(|e| e.to_string())? {
        Outcome::Done(v) => Ok(v),
        other => Err(format!("unexpected outcome {other:?}")),
    }
}

struct Options {
    file: String,
    platform: String,
    runtime: RuntimeKind,
    args: Value,
    invocations: u32,
}

fn parse_options(argv: &[String]) -> Options {
    let mut file = None;
    let mut platform = "fireworks".to_string();
    let mut runtime = RuntimeKind::NodeLike;
    let mut args_value = Value::map([]);
    let mut invocations = 1;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--platform" => {
                i += 1;
                platform = argv.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--runtime" => {
                i += 1;
                runtime = match argv.get(i).map(String::as_str) {
                    Some("node") => RuntimeKind::NodeLike,
                    Some("python") => RuntimeKind::PythonLike,
                    _ => usage(),
                };
            }
            "--args" => {
                i += 1;
                let expr = argv.get(i).unwrap_or_else(|| usage());
                args_value = eval_expr(expr).unwrap_or_else(|e| {
                    eprintln!("bad --args expression: {e}");
                    exit(2)
                });
            }
            "--invocations" => {
                i += 1;
                invocations = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(other.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    Options {
        file: file.unwrap_or_else(|| usage()),
        platform,
        runtime,
        args: args_value,
        invocations,
    }
}

fn run_on<P: Platform>(mut platform: P, spec: &FunctionSpec, opts: &Options) {
    println!(
        "platform : {} ({})",
        platform.name(),
        platform.isolation().label()
    );
    let report = match platform.install(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("install failed: {e}");
            exit(1);
        }
    };
    println!("install  : {}", report.install_time);
    if report.snapshot_pages > 0 {
        println!(
            "snapshot : {} pages ({:.1} MiB), {} @jit functions",
            report.snapshot_pages,
            report.snapshot_bytes as f64 / (1 << 20) as f64,
            report.annotated_functions
        );
    }
    for i in 1..=opts.invocations {
        match platform.invoke(&InvokeRequest::new(fid(&spec.name), opts.args.deep_clone())) {
            Ok(inv) => {
                println!(
                    "invoke #{i}: {:?} start, startup {} exec {} others {} → total {}",
                    inv.start,
                    inv.breakdown.startup,
                    inv.breakdown.exec,
                    inv.breakdown.other,
                    inv.total()
                );
                for line in &inv.printed {
                    println!("  [print] {line}");
                }
                if let Some(body) = &inv.response {
                    println!("  [http]  {body}");
                }
                println!("  result: {}", inv.value);
            }
            Err(e) => {
                eprintln!("invoke #{i} failed: {e}");
                exit(1);
            }
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("annotate") => {
            let Some(file) = argv.get(1) else { usage() };
            let source = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("cannot read {file}: {e}");
                exit(2)
            });
            match annotate(&source, &AnnotationConfig::default()) {
                Ok(a) => println!("{}", a.source),
                Err(e) => {
                    eprintln!("{e}");
                    exit(1);
                }
            }
        }
        Some("run") => {
            let opts = parse_options(&argv[1..]);
            let source = std::fs::read_to_string(&opts.file).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", opts.file);
                exit(2)
            });
            let spec =
                FunctionSpec::new("cli-function", source, opts.runtime, opts.args.deep_clone());
            match opts.platform.as_str() {
                "fireworks" => run_on(
                    FireworksPlatform::new(PlatformEnv::default_env()),
                    &spec,
                    &opts,
                ),
                "openwhisk" => run_on(
                    OpenWhiskPlatform::new(PlatformEnv::default_env()),
                    &spec,
                    &opts,
                ),
                "gvisor" => run_on(
                    GvisorPlatform::new(PlatformEnv::default_env()),
                    &spec,
                    &opts,
                ),
                "firecracker" => run_on(
                    FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None),
                    &spec,
                    &opts,
                ),
                other => {
                    eprintln!("unknown platform `{other}`");
                    usage()
                }
            }
        }
        _ => usage(),
    }
}
