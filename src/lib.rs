//! # Fireworks
//!
//! A full-system reproduction of **"FIREWORKS: A Fast, Efficient, and Safe
//! Serverless Framework using VM-level post-JIT Snapshot"** (EuroSys '22)
//! as a deterministic simulation in Rust.
//!
//! This umbrella crate re-exports the workspace's public API. The pieces:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | virtual clock, calibrated cost model, deterministic RNG, trace spans |
//! | [`obs`] | observability plane: hierarchical spans, metrics registry, JSONL + Chrome trace exporters |
//! | [`guestmem`] | page frames, copy-on-write, snapshot files, PSS accounting |
//! | [`lang`] | Flame: a dynamic language with a profiling interpreter, quickening JIT, deopt, and snapshot/resume |
//! | [`runtime`] | Node-like and Python-like runtime profiles and the guest memory model |
//! | [`annotator`] | the Fireworks source-to-source code annotator |
//! | [`microvm`] | Firecracker-style microVM manager (boot, MMDS, snapshot/restore) |
//! | [`netsim`] | network namespaces, tap devices, NAT for snapshot clones |
//! | [`msgbus`] | Kafka-style message bus (the parameter passer) |
//! | [`sandbox`] | container / gVisor sandboxes and per-path I/O costs |
//! | [`store`] | CouchDB-style document store with change feeds |
//! | [`core`] | the Fireworks platform and the shared platform API |
//! | [`baselines`] | OpenWhisk, gVisor, and Firecracker baseline platforms |
//! | [`workloads`] | FaaSdom microbenchmarks and ServerlessBench applications |
//!
//! ## Quickstart
//!
//! ```
//! use fireworks::prelude::*;
//!
//! // Build a host and the Fireworks platform on it.
//! let env = PlatformEnv::default_env();
//! let mut platform = FireworksPlatform::new(env);
//!
//! // Install the FaaSdom factorization benchmark (Node.js profile):
//! // annotate → boot a microVM → JIT → post-JIT snapshot.
//! let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
//! let report = platform.install(&spec).expect("install");
//! assert!(report.snapshot_pages > 0);
//!
//! // Invoke: restore the snapshot and run the already-JITted function.
//! let req = InvokeRequest::new(fid(&spec.name), Bench::Fact.request_params());
//! let inv = platform.invoke(&req).expect("invoke");
//! assert_eq!(inv.stats.compiles, 0); // post-JIT: nothing left to compile
//! println!(
//!     "startup {} exec {} others {}",
//!     inv.breakdown.startup, inv.breakdown.exec, inv.breakdown.other
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fireworks_annotator as annotator;
pub use fireworks_baselines as baselines;
pub use fireworks_core as core;
pub use fireworks_guestmem as guestmem;
pub use fireworks_lang as lang;
pub use fireworks_microvm as microvm;
pub use fireworks_msgbus as msgbus;
pub use fireworks_netsim as netsim;
pub use fireworks_obs as obs;
pub use fireworks_runtime as runtime;
pub use fireworks_sandbox as sandbox;
pub use fireworks_sim as sim;
pub use fireworks_store as store;
pub use fireworks_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use fireworks_baselines::{
        FirecrackerPlatform, GvisorPlatform, OpenWhiskPlatform, SnapshotPolicy,
    };
    pub use fireworks_core::api::{
        FunctionSpec, InstallReport, Invocation, InvokeRequest, Platform, PlatformError, StartKind,
        StartMode,
    };
    pub use fireworks_core::env::{EnvConfig, PlatformEnv};
    pub use fireworks_core::{
        fid, Cluster, ClusterConfig, ClusterReport, FireworksPlatform, FunctionHealth, FunctionId,
        HostId, LeastLoaded, LocalityAffinity, PagingPolicy, PlatformConfig, RecoveryPolicy,
        ResidentClone, RoundRobin, Router,
    };
    pub use fireworks_lang::Value;
    pub use fireworks_obs::{Metrics, MetricsSnapshot, Obs, Recorder, SpanId};
    pub use fireworks_runtime::{RuntimeKind, RuntimeProfile};
    pub use fireworks_sim::fault::{FaultInjector, FaultPlan, FaultSite};
    pub use fireworks_sim::{Clock, CostModel, Nanos};
    pub use fireworks_workloads::faasdom::Bench;
    pub use fireworks_workloads::serverlessbench::{AlexaApp, DataAnalysisApp};
}
